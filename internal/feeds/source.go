package feeds

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/feeds/colfmt"
	"repro/internal/mobsim"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Feed file names inside a feed directory, as written by `mnosim -raw`
// (CSV) and `mnosim -raw -format=col` / `feedconv` (columnar). Events
// are always CSV: the event feed is small and line-oriented.
const (
	TraceFeedName    = "traces.csv"
	KPIFeedName      = "kpi.csv"
	EventFeedName    = "events.csv"
	TraceColFeedName = "traces.col"
	KPIColFeedName   = "kpi.col"
)

// Feed directory formats, recorded in the meta sidecar and accepted by
// ConvertDir.
const (
	FormatCSV = "csv"
	FormatCol = "col"
)

// TraceDayReader is the day-granular trace decoding surface FeedSource
// replays from; the CSV TraceReader and the columnar
// colfmt.TraceReader both satisfy it.
type TraceDayReader interface {
	ReadDayInto(buf *mobsim.DayBuffer) (timegrid.SimDay, error)
	Skipped() int64
}

// KPIDayReader is the day-granular KPI decoding surface FeedSource
// replays from; the CSV KPIReader and the columnar colfmt.KPIReader
// both satisfy it.
type KPIDayReader interface {
	ReadDayAppend(dst []traffic.CellDay) (timegrid.SimDay, []traffic.CellDay, error)
	Skipped() int64
}

// colOptions translates reader options for the columnar decoders; the
// OnSkip hook is shared, with the block byte offset in the line slot.
func colOptions(o Options) colfmt.Options {
	return colfmt.Options{Name: o.Name, Lenient: o.Lenient, OnSkip: o.OnSkip}
}

// feedPoolSize bounds the recycled per-day backing stores a FeedSource
// keeps. It covers the deepest pipeline the package is used with (a
// stream.Prefetch window plus the day in the engine); when consumers
// hold more than this, or never call Release, the source simply
// allocates fresh stores — liveness never depends on recycling.
const feedPoolSize = 8

// feedDayRes is one recyclable backing store for a replayed day. Its
// release discipline mirrors stream.BufferPool's dayStore: every
// checkout stamps a fresh generation, and Recycle refuses anything but
// exactly one release of the current checkout, reporting rejects into
// the shared stream.DoubleReleases ledger.
type feedDayRes struct {
	src    *FeedSource
	buf    *mobsim.DayBuffer
	cells  []traffic.CellDay
	events []signaling.Event
	out    atomic.Bool
	gen    atomic.Uint64
}

// Recycle implements stream.Recycler.
func (r *feedDayRes) Recycle(gen uint64) {
	if r.gen.Load() != gen || !r.out.CompareAndSwap(true, false) {
		r.src.rejected.Add(1)
		stream.ReportDoubleRelease()
		return
	}
	select {
	case r.src.free <- r:
	default:
	}
}

// FeedSource replays persisted feeds — CSV or columnar day blocks
// (colfmt), auto-detected per file — as day batches for the streaming
// engine (stream.Source). The trace feed drives the day
// cursor; per-cell KPI records and control-plane events for the same day
// are attached when their feeds are present. All readers are streaming:
// one day of records is held at a time.
//
// Batches are produced into pooled record buffers; callers that release
// each batch when done (stream.Engine.Run does, after the merge stage)
// replay the whole feed with a bounded number of live buffers.
type FeedSource struct {
	traces TraceDayReader
	kpi    KPIDayReader
	events *EventReader

	free     chan *feedDayRes
	rejected atomic.Int64

	fi       *fault.Injector
	daysRead int64

	pendingKPIDay timegrid.SimDay
	pendingCells  []traffic.CellDay
	kpiDone       bool

	peekedEvent signaling.Event
	hasPeeked   bool
	eventsDone  bool

	closers []io.Closer
}

// NewFeedSource combines open day readers (CSV or columnar) into a
// source; kpi and events may be nil.
func NewFeedSource(traces TraceDayReader, kpi KPIDayReader, events *EventReader) *FeedSource {
	return &FeedSource{traces: traces, kpi: kpi, events: events,
		free:          make(chan *feedDayRes, feedPoolSize),
		pendingKPIDay: -1, kpiDone: kpi == nil, eventsDone: events == nil}
}

// WithFault arms the source with a fault injector (nil: disabled) and
// returns the receiver. Next fires the fault.FeedRead site keyed by the
// 0-based index of the day being read.
func (s *FeedSource) WithFault(fi *fault.Injector) *FeedSource {
	s.fi = fi
	return s
}

// OpenDir opens a feed directory with strict readers; see OpenDirOpts.
func OpenDir(dir string) (*FeedSource, error) {
	return OpenDirOpts(dir, Options{})
}

// OpenDirOpts opens a feed directory: a trace feed (traces.col or
// traces.csv) is required, KPI and event feeds are attached when
// present. The format of each file is auto-detected by sniffing its
// leading bytes for the columnar magic, so extension and content may
// disagree without breaking replay. Each reader gets opt with Name set
// to the file's path, so row/block errors and OnSkip calls carry
// file:line (CSV) or file:offset (columnar) context. Close the source
// when done.
func OpenDirOpts(dir string, opt Options) (*FeedSource, error) {
	tr, tc, err := openTraceFeed(dir, opt)
	if err != nil {
		return nil, err
	}
	s := NewFeedSource(tr, nil, nil)
	s.closers = append(s.closers, tc)

	kr, kc, err := openKPIFeed(dir, opt)
	if err != nil {
		s.Close()
		return nil, err
	}
	if kr != nil {
		s.kpi, s.kpiDone = kr, false
		s.closers = append(s.closers, kc)
	}
	if ef, err := os.Open(filepath.Join(dir, EventFeedName)); err == nil {
		o := opt
		o.Name = filepath.Join(dir, EventFeedName)
		er, err := NewEventReaderOpts(ef, o)
		if err != nil {
			s.Close()
			ef.Close()
			return nil, err
		}
		s.events, s.eventsDone = er, false
		s.closers = append(s.closers, ef)
	}
	return s, nil
}

// sniffCol reports whether the file opens with the columnar magic and
// returns a reader that replays the sniffed bytes before the rest.
func sniffCol(f *os.File) (io.Reader, bool) {
	head := make([]byte, len(colfmt.Magic))
	n, _ := io.ReadFull(f, head)
	r := io.MultiReader(bytes.NewReader(head[:n]), f)
	return r, n == len(colfmt.Magic) && string(head) == colfmt.Magic
}

// openTraceFeed opens the directory's trace feed, preferring the
// columnar file name but deciding the decoder by content.
func openTraceFeed(dir string, opt Options) (TraceDayReader, io.Closer, error) {
	var lastErr error
	for _, name := range []string{TraceColFeedName, TraceFeedName} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			lastErr = err
			continue
		}
		o := opt
		o.Name = filepath.Join(dir, name)
		r, isCol := sniffCol(f)
		var tr TraceDayReader
		if isCol {
			tr, err = colfmt.NewTraceReaderOpts(r, colOptions(o))
		} else {
			tr, err = NewTraceReaderOpts(r, o)
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return tr, f, nil
	}
	return nil, nil, fmt.Errorf("feeds: opening trace feed: %w", lastErr)
}

// openKPIFeed opens the directory's KPI feed if one exists (nil reader
// when absent), deciding the decoder by content like openTraceFeed.
func openKPIFeed(dir string, opt Options) (KPIDayReader, io.Closer, error) {
	for _, name := range []string{KPIColFeedName, KPIFeedName} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		o := opt
		o.Name = filepath.Join(dir, name)
		r, isCol := sniffCol(f)
		var kr KPIDayReader
		if isCol {
			kr, err = colfmt.NewKPIReaderOpts(r, colOptions(o))
		} else {
			kr, err = NewKPIReaderOpts(r, o)
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return kr, f, nil
	}
	return nil, nil, nil
}

// Close releases the underlying files.
func (s *FeedSource) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// Skipped returns the corrupt rows skipped across all attached readers
// (non-zero only in lenient mode).
func (s *FeedSource) Skipped() int64 {
	n := s.traces.Skipped()
	if s.kpi != nil {
		n += s.kpi.Skipped()
	}
	if s.events != nil {
		n += s.events.Skipped()
	}
	return n
}

// Rejected returns how many batch releases this source refused (double
// or stale); tests pin it at zero on every clean and faulted path.
func (s *FeedSource) Rejected() int64 { return s.rejected.Load() }

// getRes draws a backing store from the free list, or allocates one,
// stamping a fresh checkout generation either way.
func (s *FeedSource) getRes() *feedDayRes {
	var r *feedDayRes
	select {
	case r = <-s.free:
	default:
		r = &feedDayRes{src: s, buf: mobsim.NewDayBuffer()}
	}
	r.gen.Add(1)
	r.out.Store(true)
	return r
}

// Next returns the next day batch; io.EOF when the trace feed ends.
func (s *FeedSource) Next() (stream.DayBatch, error) {
	if err := s.fi.Fire(fault.FeedRead, s.daysRead); err != nil {
		return stream.DayBatch{}, err
	}
	s.daysRead++
	res := s.getRes()
	gen := res.gen.Load()
	day, err := s.traces.ReadDayInto(res.buf)
	if err != nil {
		res.Recycle(gen)
		return stream.DayBatch{}, err // io.EOF passes through
	}
	b := stream.DayBatch{Day: day, Traces: res.buf.Traces(), Owner: res, Gen: gen}
	res.cells, err = s.kpiFor(day, res.cells[:0])
	if err != nil {
		res.Recycle(gen)
		return stream.DayBatch{}, err
	}
	if len(res.cells) > 0 {
		b.Cells = res.cells
	}
	res.events, err = s.eventsFor(day, res.events[:0])
	if err != nil {
		res.Recycle(gen)
		return stream.DayBatch{}, err
	}
	if len(res.events) > 0 {
		b.Events = res.events
	}
	return b, nil
}

// kpiFor appends the KPI records of the given day to dst, skipping feed
// days that precede it (e.g. a trace feed opened mid-window). The
// one-day read-ahead lives in the source's own pending buffer and is
// copied out, so dst never aliases reader state.
func (s *FeedSource) kpiFor(day timegrid.SimDay, dst []traffic.CellDay) ([]traffic.CellDay, error) {
	for !s.kpiDone {
		if s.pendingKPIDay < 0 {
			d, cells, err := s.kpi.ReadDayAppend(s.pendingCells[:0])
			if err == io.EOF {
				s.kpiDone = true
				break
			}
			if err != nil {
				return dst, err
			}
			s.pendingKPIDay, s.pendingCells = d, cells
		}
		switch {
		case s.pendingKPIDay == day:
			dst = append(dst, s.pendingCells...)
			s.pendingKPIDay = -1
			return dst, nil
		case s.pendingKPIDay < day:
			s.pendingKPIDay = -1 // stale feed day
		default:
			return dst, nil // feed is ahead; no records for this day
		}
	}
	return dst, nil
}

// eventsFor appends the events of the given day to dst, preserving feed
// order.
func (s *FeedSource) eventsFor(day timegrid.SimDay, dst []signaling.Event) ([]signaling.Event, error) {
	for !s.eventsDone {
		var ev signaling.Event
		if s.hasPeeked {
			ev, s.hasPeeked = s.peekedEvent, false
		} else {
			e, err := s.events.Read()
			if err == io.EOF {
				s.eventsDone = true
				break
			}
			if err != nil {
				return dst, err
			}
			ev = e
		}
		switch {
		case ev.Day == day:
			dst = append(dst, ev)
		case ev.Day < day:
			// stale feed day; drop
		default:
			s.peekedEvent, s.hasPeeked = ev, true // belongs to a later day
			return dst, nil
		}
	}
	return dst, nil
}
