package feeds

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/mobsim"
	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Feed file names inside a feed directory, as written by `mnosim -raw`.
const (
	TraceFeedName = "traces.csv"
	KPIFeedName   = "kpi.csv"
	EventFeedName = "events.csv"
)

// feedPoolSize bounds the recycled per-day backing stores a FeedSource
// keeps. It covers the deepest pipeline the package is used with (a
// stream.Prefetch window plus the day in the engine); when consumers
// hold more than this, or never call Release, the source simply
// allocates fresh stores — liveness never depends on recycling.
const feedPoolSize = 8

// feedDayRes is one recyclable backing store for a replayed day.
type feedDayRes struct {
	buf    *mobsim.DayBuffer
	cells  []traffic.CellDay
	events []signaling.Event
	// out is true while the store is checked out; the recycle hook
	// swaps it back, making release idempotent across DayBatch copies.
	out     atomic.Bool
	recycle func()
}

// FeedSource replays persisted CSV feeds as day batches for the
// streaming engine (stream.Source). The trace feed drives the day
// cursor; per-cell KPI records and control-plane events for the same day
// are attached when their feeds are present. All readers are streaming:
// one day of records is held at a time.
//
// Batches are produced into pooled record buffers; callers that release
// each batch when done (stream.Engine.Run does, after the merge stage)
// replay the whole feed with a bounded number of live buffers.
type FeedSource struct {
	traces *TraceReader
	kpi    *KPIReader
	events *EventReader

	free chan *feedDayRes

	pendingKPIDay timegrid.SimDay
	pendingCells  []traffic.CellDay
	kpiDone       bool

	peekedEvent signaling.Event
	hasPeeked   bool
	eventsDone  bool

	closers []io.Closer
}

// NewFeedSource combines open readers into a source; kpi and events may
// be nil.
func NewFeedSource(traces *TraceReader, kpi *KPIReader, events *EventReader) *FeedSource {
	return &FeedSource{traces: traces, kpi: kpi, events: events,
		free:          make(chan *feedDayRes, feedPoolSize),
		pendingKPIDay: -1, kpiDone: kpi == nil, eventsDone: events == nil}
}

// OpenDir opens a feed directory: traces.csv is required, kpi.csv and
// events.csv are attached when present. Close the source when done.
func OpenDir(dir string) (*FeedSource, error) {
	tf, err := os.Open(filepath.Join(dir, TraceFeedName))
	if err != nil {
		return nil, fmt.Errorf("feeds: opening trace feed: %w", err)
	}
	tr, err := NewTraceReader(tf)
	if err != nil {
		tf.Close()
		return nil, err
	}
	s := NewFeedSource(tr, nil, nil)
	s.closers = append(s.closers, tf)

	if kf, err := os.Open(filepath.Join(dir, KPIFeedName)); err == nil {
		kr, err := NewKPIReader(kf)
		if err != nil {
			s.Close()
			kf.Close()
			return nil, err
		}
		s.kpi, s.kpiDone = kr, false
		s.closers = append(s.closers, kf)
	}
	if ef, err := os.Open(filepath.Join(dir, EventFeedName)); err == nil {
		er, err := NewEventReader(ef)
		if err != nil {
			s.Close()
			ef.Close()
			return nil, err
		}
		s.events, s.eventsDone = er, false
		s.closers = append(s.closers, ef)
	}
	return s, nil
}

// Close releases the underlying files.
func (s *FeedSource) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// getRes draws a backing store from the free list, or allocates one.
func (s *FeedSource) getRes() *feedDayRes {
	select {
	case r := <-s.free:
		r.out.Store(true)
		return r
	default:
	}
	r := &feedDayRes{buf: mobsim.NewDayBuffer()}
	r.recycle = func() {
		if !r.out.CompareAndSwap(true, false) {
			return // already recycled via another batch copy
		}
		select {
		case s.free <- r:
		default:
		}
	}
	r.out.Store(true)
	return r
}

// Next returns the next day batch; io.EOF when the trace feed ends.
func (s *FeedSource) Next() (stream.DayBatch, error) {
	res := s.getRes()
	day, err := s.traces.ReadDayInto(res.buf)
	if err != nil {
		res.recycle()
		return stream.DayBatch{}, err // io.EOF passes through
	}
	b := stream.DayBatch{Day: day, Traces: res.buf.Traces(), Recycle: res.recycle}
	res.cells, err = s.kpiFor(day, res.cells[:0])
	if err != nil {
		res.recycle()
		return stream.DayBatch{}, err
	}
	if len(res.cells) > 0 {
		b.Cells = res.cells
	}
	res.events, err = s.eventsFor(day, res.events[:0])
	if err != nil {
		res.recycle()
		return stream.DayBatch{}, err
	}
	if len(res.events) > 0 {
		b.Events = res.events
	}
	return b, nil
}

// kpiFor appends the KPI records of the given day to dst, skipping feed
// days that precede it (e.g. a trace feed opened mid-window). The
// one-day read-ahead lives in the source's own pending buffer and is
// copied out, so dst never aliases reader state.
func (s *FeedSource) kpiFor(day timegrid.SimDay, dst []traffic.CellDay) ([]traffic.CellDay, error) {
	for !s.kpiDone {
		if s.pendingKPIDay < 0 {
			d, cells, err := s.kpi.ReadDayAppend(s.pendingCells[:0])
			if err == io.EOF {
				s.kpiDone = true
				break
			}
			if err != nil {
				return dst, err
			}
			s.pendingKPIDay, s.pendingCells = d, cells
		}
		switch {
		case s.pendingKPIDay == day:
			dst = append(dst, s.pendingCells...)
			s.pendingKPIDay = -1
			return dst, nil
		case s.pendingKPIDay < day:
			s.pendingKPIDay = -1 // stale feed day
		default:
			return dst, nil // feed is ahead; no records for this day
		}
	}
	return dst, nil
}

// eventsFor appends the events of the given day to dst, preserving feed
// order.
func (s *FeedSource) eventsFor(day timegrid.SimDay, dst []signaling.Event) ([]signaling.Event, error) {
	for !s.eventsDone {
		var ev signaling.Event
		if s.hasPeeked {
			ev, s.hasPeeked = s.peekedEvent, false
		} else {
			e, err := s.events.Read()
			if err == io.EOF {
				s.eventsDone = true
				break
			}
			if err != nil {
				return dst, err
			}
			ev = e
		}
		switch {
		case ev.Day == day:
			dst = append(dst, ev)
		case ev.Day < day:
			// stale feed day; drop
		default:
			s.peekedEvent, s.hasPeeked = ev, true // belongs to a later day
			return dst, nil
		}
	}
	return dst, nil
}
