package feeds

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/signaling"
	"repro/internal/stream"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// Feed file names inside a feed directory, as written by `mnosim -raw`.
const (
	TraceFeedName = "traces.csv"
	KPIFeedName   = "kpi.csv"
	EventFeedName = "events.csv"
)

// FeedSource replays persisted CSV feeds as day batches for the
// streaming engine (stream.Source). The trace feed drives the day
// cursor; per-cell KPI records and control-plane events for the same day
// are attached when their feeds are present. All readers are streaming:
// one day of records is held at a time.
type FeedSource struct {
	traces *TraceReader
	kpi    *KPIReader
	events *EventReader

	pendingKPIDay timegrid.SimDay
	pendingCells  []traffic.CellDay
	kpiDone       bool

	peekedEvent *signaling.Event
	eventsDone  bool

	closers []io.Closer
}

// NewFeedSource combines open readers into a source; kpi and events may
// be nil.
func NewFeedSource(traces *TraceReader, kpi *KPIReader, events *EventReader) *FeedSource {
	return &FeedSource{traces: traces, kpi: kpi, events: events,
		pendingKPIDay: -1, kpiDone: kpi == nil, eventsDone: events == nil}
}

// OpenDir opens a feed directory: traces.csv is required, kpi.csv and
// events.csv are attached when present. Close the source when done.
func OpenDir(dir string) (*FeedSource, error) {
	tf, err := os.Open(filepath.Join(dir, TraceFeedName))
	if err != nil {
		return nil, fmt.Errorf("feeds: opening trace feed: %w", err)
	}
	tr, err := NewTraceReader(tf)
	if err != nil {
		tf.Close()
		return nil, err
	}
	s := NewFeedSource(tr, nil, nil)
	s.closers = append(s.closers, tf)

	if kf, err := os.Open(filepath.Join(dir, KPIFeedName)); err == nil {
		kr, err := NewKPIReader(kf)
		if err != nil {
			s.Close()
			kf.Close()
			return nil, err
		}
		s.kpi, s.kpiDone = kr, false
		s.closers = append(s.closers, kf)
	}
	if ef, err := os.Open(filepath.Join(dir, EventFeedName)); err == nil {
		er, err := NewEventReader(ef)
		if err != nil {
			s.Close()
			ef.Close()
			return nil, err
		}
		s.events, s.eventsDone = er, false
		s.closers = append(s.closers, ef)
	}
	return s, nil
}

// Close releases the underlying files.
func (s *FeedSource) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// Next returns the next day batch; io.EOF when the trace feed ends.
func (s *FeedSource) Next() (stream.DayBatch, error) {
	day, traces, err := s.traces.ReadDay()
	if err != nil {
		return stream.DayBatch{}, err // io.EOF passes through
	}
	b := stream.DayBatch{Day: day, Traces: traces}
	if cells, err := s.kpiFor(day); err != nil {
		return stream.DayBatch{}, err
	} else {
		b.Cells = cells
	}
	if events, err := s.eventsFor(day); err != nil {
		return stream.DayBatch{}, err
	} else {
		b.Events = events
	}
	return b, nil
}

// kpiFor returns the KPI records of the given day, skipping feed days
// that precede it (e.g. a trace feed opened mid-window).
func (s *FeedSource) kpiFor(day timegrid.SimDay) ([]traffic.CellDay, error) {
	for !s.kpiDone {
		if s.pendingKPIDay < 0 {
			d, cells, err := s.kpi.ReadDay()
			if err == io.EOF {
				s.kpiDone = true
				break
			}
			if err != nil {
				return nil, err
			}
			s.pendingKPIDay, s.pendingCells = d, cells
		}
		switch {
		case s.pendingKPIDay == day:
			cells := s.pendingCells
			s.pendingKPIDay, s.pendingCells = -1, nil
			return cells, nil
		case s.pendingKPIDay < day:
			s.pendingKPIDay, s.pendingCells = -1, nil // stale feed day
		default:
			return nil, nil // feed is ahead; no records for this day
		}
	}
	return nil, nil
}

// eventsFor returns the events of the given day, preserving feed order.
func (s *FeedSource) eventsFor(day timegrid.SimDay) ([]signaling.Event, error) {
	var out []signaling.Event
	for !s.eventsDone {
		ev := s.peekedEvent
		s.peekedEvent = nil
		if ev == nil {
			e, err := s.events.Read()
			if err == io.EOF {
				s.eventsDone = true
				break
			}
			if err != nil {
				return out, err
			}
			ev = &e
		}
		switch {
		case ev.Day == day:
			out = append(out, *ev)
		case ev.Day < day:
			// stale feed day; drop
		default:
			s.peekedEvent = ev // belongs to a later day
			return out, nil
		}
	}
	return out, nil
}
