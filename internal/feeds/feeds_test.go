package feeds

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/census"
	"repro/internal/mobsim"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

var (
	fixOnce sync.Once
	fixPop  *popsim.Population
	fixSim  *mobsim.Simulator
	fixEng  *traffic.Engine
)

func fixture(t *testing.T) (*popsim.Population, *mobsim.Simulator, *traffic.Engine) {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		fixPop = popsim.Synthesize(m, topo, popsim.Config{Seed: 1, TargetUsers: 600})
		fixSim = mobsim.New(fixPop, pandemic.Default(), 1)
		fixEng = traffic.NewEngine(fixPop, pandemic.Default(), traffic.DefaultParams(), 1)
	})
	return fixPop, fixSim, fixEng
}

func TestTraceRoundTrip(t *testing.T) {
	_, sim, _ := fixture(t)
	days := []timegrid.SimDay{3, 4}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	want := map[timegrid.SimDay][]mobsim.DayTrace{}
	for _, d := range days {
		traces := sim.Day(d)
		want[d] = traces
		if err := w.WriteDay(d, traces); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range days {
		day, traces, err := r.ReadDay()
		if err != nil {
			t.Fatal(err)
		}
		if day != d {
			t.Fatalf("day = %d, want %d", day, d)
		}
		if len(traces) != len(want[d]) {
			t.Fatalf("day %d: %d traces, want %d", d, len(traces), len(want[d]))
		}
		for i := range traces {
			if traces[i].User != want[d][i].User {
				t.Fatalf("trace %d user mismatch", i)
			}
			if len(traces[i].Visits) != len(want[d][i].Visits) {
				t.Fatalf("trace %d visit count mismatch", i)
			}
			for j := range traces[i].Visits {
				if traces[i].Visits[j] != want[d][i].Visits[j] {
					t.Fatalf("trace %d visit %d mismatch: %+v vs %+v",
						i, j, traces[i].Visits[j], want[d][i].Visits[j])
				}
			}
		}
	}
	if _, _, err := r.ReadDay(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestKPIRoundTrip(t *testing.T) {
	_, sim, eng := fixture(t)
	var buf bytes.Buffer
	w := NewKPIWriter(&buf)
	days := []timegrid.SimDay{30, 31}
	want := map[timegrid.SimDay][]traffic.CellDay{}
	for _, d := range days {
		cells := eng.Day(d, sim.Day(d))
		want[d] = cells
		if err := w.WriteDay(d, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewKPIReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range days {
		day, cells, err := r.ReadDay()
		if err != nil {
			t.Fatal(err)
		}
		if day != d {
			t.Fatalf("day = %d, want %d", day, d)
		}
		if len(cells) != len(want[d]) {
			t.Fatalf("day %d: %d cells, want %d", d, len(cells), len(want[d]))
		}
		for i := range cells {
			if cells[i].Cell != want[d][i].Cell {
				t.Fatalf("cell %d ID mismatch", i)
			}
			for m := 0; m < traffic.NumMetrics; m++ {
				if cells[i].Values[m] != want[d][i].Values[m] {
					t.Fatalf("cell %d metric %d: %v vs %v",
						i, m, cells[i].Values[m], want[d][i].Values[m])
				}
			}
		}
	}
	if _, _, err := r.ReadDay(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	pop, sim, _ := fixture(t)
	gen := signaling.NewGenerator(pop, 1)
	day := timegrid.SimDay(10)
	var buf bytes.Buffer
	w := NewEventWriter(&buf)
	var want []signaling.Event
	gen.Day(day, sim.Day(day), func(e *signaling.Event) {
		want = append(want, *e)
		w.Consume(e)
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewEventReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		ev, err := r.Read()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("read %d events, wrote %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev != want[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, ev, want[i])
		}
	}
}

func TestBadHeaders(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("bad trace header accepted")
	}
	if _, err := NewKPIReader(strings.NewReader("x\n")); err == nil {
		t.Error("bad KPI header accepted")
	}
	if _, err := NewEventReader(strings.NewReader("nope,nope\n")); err == nil {
		t.Error("bad event header accepted")
	}
	if _, err := NewTraceReader(strings.NewReader("")); err == nil {
		t.Error("empty trace feed accepted")
	}
}

func TestMalformedRows(t *testing.T) {
	trace := "day,user,tower,bin,seconds,at_residence\n1,2,3,99,100,1\n"
	r, err := NewTraceReader(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadDay(); err == nil {
		t.Error("out-of-range bin accepted")
	}

	trace2 := "day,user,tower,bin,seconds,at_residence\n1,2,3,1,100,maybe\n"
	r2, _ := NewTraceReader(strings.NewReader(trace2))
	if _, _, err := r2.ReadDay(); err == nil {
		t.Error("bad bool accepted")
	}

	kpi := strings.Join(kpiHeader, ",") + "\nnotanumber" + strings.Repeat(",0", len(kpiHeader)-1) + "\n"
	kr, err := NewKPIReader(strings.NewReader(kpi))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kr.ReadDay(); err == nil {
		t.Error("bad KPI day accepted")
	}

	ev := strings.Join(eventHeader, ",") + "\n1,2,3,999,4,0,2,1,234,10,1\n"
	er, _ := NewEventReader(strings.NewReader(ev))
	if _, err := er.Read(); err == nil {
		t.Error("out-of-range event type accepted")
	}
}

func TestEmptyFeeds(t *testing.T) {
	// A writer that never wrote produces an empty file (no header); the
	// readers reject it, which is the correct signal for "no data".
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("unwritten feed should be empty")
	}
	// Header only: reader yields EOF immediately.
	var buf2 bytes.Buffer
	w2 := NewTraceWriter(&buf2)
	if err := w2.WriteDay(0, nil); err != nil {
		t.Fatal(err)
	}
	w2.Flush()
	r, err := NewTraceReader(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadDay(); err != io.EOF {
		t.Errorf("header-only feed: got %v, want EOF", err)
	}
}
