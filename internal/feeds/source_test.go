package feeds

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/signaling"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// writeFeedDir persists a small three-day feed set: traces for days
// 0–2, KPI records for days 1–2 (a feed opened mid-window), events for
// day 1 only.
func writeFeedDir(t *testing.T, dir string) {
	t.Helper()
	tf, err := os.Create(filepath.Join(dir, TraceFeedName))
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTraceWriter(tf)
	for day := timegrid.SimDay(0); day < 3; day++ {
		traces := []mobsim.DayTrace{
			{User: 1, Visits: []mobsim.Visit{mobsim.MakeVisit(2, 1, 600, true)}},
			{User: 7, Visits: []mobsim.Visit{mobsim.MakeVisit(3, 2, 1200, false)}},
		}
		if err := tw.WriteDay(day, traces); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	kf, err := os.Create(filepath.Join(dir, KPIFeedName))
	if err != nil {
		t.Fatal(err)
	}
	kw := NewKPIWriter(kf)
	for day := timegrid.SimDay(1); day < 3; day++ {
		cells := []traffic.CellDay{{Cell: radio.CellID(int(day) * 10)}}
		if err := kw.WriteDay(day, cells); err != nil {
			t.Fatal(err)
		}
	}
	if err := kw.Flush(); err != nil {
		t.Fatal(err)
	}
	kf.Close()

	ef, err := os.Create(filepath.Join(dir, EventFeedName))
	if err != nil {
		t.Fatal(err)
	}
	ew := NewEventWriter(ef)
	for i := 0; i < 4; i++ {
		ew.Consume(&signaling.Event{Day: 1, SecOfDay: int32(i), User: popsim.UserID(i), Type: signaling.Attach, OK: true})
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	ef.Close()
}

func TestFeedSourceAlignsDays(t *testing.T) {
	dir := t.TempDir()
	writeFeedDir(t, dir)
	src, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for day := timegrid.SimDay(0); day < 3; day++ {
		b, err := src.Next()
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if b.Day != day {
			t.Fatalf("want day %d, got %d", day, b.Day)
		}
		if len(b.Traces) != 2 || b.Traces[0].User != 1 || b.Traces[1].User != 7 {
			t.Fatalf("day %d: bad traces %+v", day, b.Traces)
		}
		switch day {
		case 0:
			if b.Cells != nil {
				t.Fatalf("day 0: unexpected cells")
			}
			if len(b.Events) != 0 {
				t.Fatalf("day 0: unexpected events")
			}
		case 1:
			if len(b.Cells) != 1 || b.Cells[0].Cell != 10 {
				t.Fatalf("day 1: bad cells %+v", b.Cells)
			}
			if len(b.Events) != 4 {
				t.Fatalf("day 1: want 4 events, got %d", len(b.Events))
			}
		case 2:
			if len(b.Cells) != 1 || b.Cells[0].Cell != 20 {
				t.Fatalf("day 2: bad cells %+v", b.Cells)
			}
			if len(b.Events) != 0 {
				t.Fatalf("day 2: unexpected events")
			}
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFeedSourceTracesOnly(t *testing.T) {
	dir := t.TempDir()
	writeFeedDir(t, dir)
	// Remove the optional feeds: the source must still stream traces.
	os.Remove(filepath.Join(dir, KPIFeedName))
	os.Remove(filepath.Join(dir, EventFeedName))
	src, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	days := 0
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Cells != nil || b.Events != nil {
			t.Fatalf("unexpected optional feeds: %+v", b)
		}
		days++
	}
	if days != 3 {
		t.Fatalf("want 3 days, got %d", days)
	}
}

func TestOpenDirMissingTraces(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("want error for missing trace feed")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadMeta(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	want := Meta{Users: 8000, Seed: 42, Scenario: "early-lockdown"}
	if err := WriteMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadMeta(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("meta: got %+v, want %+v", got, want)
	}
}

func TestMetaReadsPreScenarioSidecar(t *testing.T) {
	// Feeds written before the scenario column existed must still read,
	// with an empty Scenario.
	dir := t.TempDir()
	legacy := "users,seed\n8000,42\n"
	if err := os.WriteFile(filepath.Join(dir, MetaFeedName), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadMeta(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got != (Meta{Users: 8000, Seed: 42}) {
		t.Fatalf("legacy meta: got %+v", got)
	}
	// Truncated sidecars (fewer than the two mandatory columns) are
	// rejected, not panicked on.
	if err := os.WriteFile(filepath.Join(dir, MetaFeedName), []byte("users\n8000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadMeta(dir); err == nil {
		t.Fatal("truncated meta header accepted")
	}
}
