package feeds

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/feeds/colfmt"
	"repro/internal/mobsim"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// traceDayWriter and kpiDayWriter are the day-granular encoding
// surfaces shared by the CSV and columnar writers.
type traceDayWriter interface {
	WriteDay(day timegrid.SimDay, traces []mobsim.DayTrace) error
	Flush() error
}

type kpiDayWriter interface {
	WriteDay(day timegrid.SimDay, cells []traffic.CellDay) error
	Flush() error
}

// feedFileNames returns the trace and KPI file names for a format.
func feedFileNames(format string) (traces, kpi string, err error) {
	switch format {
	case FormatCSV:
		return TraceFeedName, KPIFeedName, nil
	case FormatCol:
		return TraceColFeedName, KPIColFeedName, nil
	default:
		return "", "", fmt.Errorf("feeds: unknown feed format %q (want %q or %q)", format, FormatCSV, FormatCol)
	}
}

// ConvertDir re-encodes the feed directory in into out using the given
// format (FormatCSV or FormatCol). The input format of each file is
// auto-detected, so the call converts in either direction (or
// re-encodes in place semantics aside). Trace and KPI feeds are
// re-encoded day by day with bounded memory; the event feed (always
// CSV) and nothing else is copied verbatim; the meta sidecar, when
// present, is carried over with Format/FormatVersion updated. The
// conversion is lossless: converting CSV → col → CSV reproduces the
// original trace and KPI files byte for byte.
//
// opt applies to the *input* readers (strict by default; lenient
// conversion salvages damaged feeds, dropping what cannot be decoded).
func ConvertDir(in, out, format string, opt Options) error {
	traceName, kpiName, err := feedFileNames(format)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Traces (required).
	tr, tc, err := openTraceFeed(in, opt)
	if err != nil {
		return err
	}
	defer tc.Close()
	tf, err := os.Create(filepath.Join(out, traceName))
	if err != nil {
		return err
	}
	defer tf.Close()
	var tw traceDayWriter
	if format == FormatCol {
		tw = colfmt.NewTraceWriter(tf)
	} else {
		tw = NewTraceWriter(tf)
	}
	buf := mobsim.NewDayBuffer()
	for {
		day, err := tr.ReadDayInto(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := tw.WriteDay(day, buf.Traces()); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// KPI cells (optional).
	kr, kc, err := openKPIFeed(in, opt)
	if err != nil {
		return err
	}
	if kr != nil {
		defer kc.Close()
		kf, err := os.Create(filepath.Join(out, kpiName))
		if err != nil {
			return err
		}
		defer kf.Close()
		var kw kpiDayWriter
		if format == FormatCol {
			kw = colfmt.NewKPIWriter(kf)
		} else {
			kw = NewKPIWriter(kf)
		}
		var cells []traffic.CellDay
		for {
			day, out, err := kr.ReadDayAppend(cells[:0])
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			cells = out
			if err := kw.WriteDay(day, cells); err != nil {
				return err
			}
		}
		if err := kw.Flush(); err != nil {
			return err
		}
	}

	// Events (optional, copied verbatim).
	if src, err := os.Open(filepath.Join(in, EventFeedName)); err == nil {
		defer src.Close()
		dst, err := os.Create(filepath.Join(out, EventFeedName))
		if err != nil {
			return err
		}
		defer dst.Close()
		if _, err := io.Copy(dst, src); err != nil {
			return err
		}
	}

	// Meta sidecar (optional, format columns refreshed).
	m, ok, err := ReadMeta(in)
	if err != nil {
		return err
	}
	if ok {
		m.Format = format
		if format == FormatCol {
			m.FormatVersion = colfmt.Version
		} else {
			m.FormatVersion = 0
		}
		if err := WriteMeta(out, m); err != nil {
			return err
		}
	}
	return nil
}
