package colfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/mobsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func mkVisit(tower int, bin int, sec int32, res bool) mobsim.Visit {
	return mobsim.MakeVisit(radio.TowerID(tower), timegrid.Bin(bin), sec, res)
}

// traceFixture is a hand-built multi-day feed exercising the format's
// corners: non-monotonic user IDs (negative deltas), a zero-visit user,
// an empty day block, extreme IDs and field extremes.
func traceFixture() map[timegrid.SimDay][]mobsim.DayTrace {
	return map[timegrid.SimDay][]mobsim.DayTrace{
		3: {
			{User: 5, Visits: []mobsim.Visit{mkVisit(0, 0, 0, false), mkVisit(1<<31-1, 5, mobsim.MaxVisitSeconds, true)}},
			{User: 9, Visits: []mobsim.Visit{mkVisit(42, 2, 14400, true)}},
			{User: 7, Visits: []mobsim.Visit{mkVisit(7, 1, 60, false), mkVisit(8, 3, 61, true), mkVisit(9, 4, 62, false)}},
		},
		4: {},
		5: {
			{User: 0, Visits: nil},
			{User: math.MaxUint32, Visits: []mobsim.Visit{mkVisit(12, 5, 86400, false)}},
		},
	}
}

var fixtureDays = []timegrid.SimDay{3, 4, 5}

// encodeTraces writes the fixture and returns the file bytes.
func encodeTraces(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	fix := traceFixture()
	for _, d := range fixtureDays {
		if err := w.WriteDay(d, fix[d]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAllTraces(t *testing.T, data []byte, opt Options) (map[timegrid.SimDay][]mobsim.DayTrace, []timegrid.SimDay, *TraceReader, error) {
	t.Helper()
	r, err := NewTraceReaderOpts(bytes.NewReader(data), opt)
	if err != nil {
		return nil, nil, nil, err
	}
	got := map[timegrid.SimDay][]mobsim.DayTrace{}
	var order []timegrid.SimDay
	buf := mobsim.NewDayBuffer()
	for {
		day, err := r.ReadDayInto(buf)
		if err == io.EOF {
			return got, order, r, nil
		}
		if err != nil {
			return got, order, r, err
		}
		// Deep-copy: the buffer is reused across days.
		var traces []mobsim.DayTrace
		for _, tr := range buf.Traces() {
			traces = append(traces, mobsim.DayTrace{User: tr.User, Visits: append([]mobsim.Visit(nil), tr.Visits...)})
		}
		got[day] = traces
		order = append(order, day)
	}
}

func sameTraces(t *testing.T, day timegrid.SimDay, got, want []mobsim.DayTrace) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("day %d: %d traces, want %d", day, len(got), len(want))
	}
	for i := range want {
		if got[i].User != want[i].User {
			t.Fatalf("day %d trace %d: user %d, want %d", day, i, got[i].User, want[i].User)
		}
		if len(got[i].Visits) != len(want[i].Visits) {
			t.Fatalf("day %d user %d: %d visits, want %d", day, want[i].User, len(got[i].Visits), len(want[i].Visits))
		}
		for j := range want[i].Visits {
			if got[i].Visits[j] != want[i].Visits[j] {
				t.Fatalf("day %d user %d visit %d: %v, want %v", day, want[i].User, j, got[i].Visits[j], want[i].Visits[j])
			}
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	data := encodeTraces(t)
	got, order, r, err := readAllTraces(t, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(fixtureDays) {
		t.Fatalf("read %d days %v, want %v", len(order), order, fixtureDays)
	}
	fix := traceFixture()
	for i, d := range fixtureDays {
		if order[i] != d {
			t.Fatalf("day order %v, want %v", order, fixtureDays)
		}
		sameTraces(t, d, got[d], fix[d])
	}
	if r.Skipped() != 0 {
		t.Fatalf("clean feed skipped %d blocks", r.Skipped())
	}
}

func TestTraceUserRange(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriterRange(&buf, 100, 199)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := r.UserRange(); lo != 100 || hi != 199 {
		t.Fatalf("UserRange() = %d,%d, want 100,199", lo, hi)
	}
	if _, err := r.ReadDayInto(mobsim.NewDayBuffer()); err != io.EOF {
		t.Fatalf("empty feed read = %v, want io.EOF", err)
	}
}

func kpiFixture() map[timegrid.SimDay][]traffic.CellDay {
	mk := func(cell int, seed float64) traffic.CellDay {
		c := traffic.CellDay{Cell: radio.CellID(cell)}
		for m := 0; m < traffic.NumMetrics; m++ {
			c.Values[m] = seed * float64(m+1)
		}
		return c
	}
	weird := traffic.CellDay{Cell: 2}
	weird.Values[0] = math.NaN()
	weird.Values[1] = math.Inf(1)
	weird.Values[2] = -0.0
	return map[timegrid.SimDay][]traffic.CellDay{
		10: {mk(30, 1.25), mk(7, 1e-12), mk(math.MaxInt32, 9.75e11)},
		11: {weird},
	}
}

var kpiDays = []timegrid.SimDay{10, 11}

func TestKPIRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewKPIWriter(&buf)
	fix := kpiFixture()
	for _, d := range kpiDays {
		if err := w.WriteDay(d, fix[d]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewKPIReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var cells []traffic.CellDay
	for _, d := range kpiDays {
		day, out, err := r.ReadDayAppend(cells[:0])
		if err != nil {
			t.Fatal(err)
		}
		cells = out
		if day != d {
			t.Fatalf("day = %d, want %d", day, d)
		}
		want := fix[d]
		if len(cells) != len(want) {
			t.Fatalf("day %d: %d cells, want %d", d, len(cells), len(want))
		}
		for i := range want {
			if cells[i].Cell != want[i].Cell {
				t.Fatalf("day %d cell %d: ID %d, want %d", d, i, cells[i].Cell, want[i].Cell)
			}
			for m := 0; m < traffic.NumMetrics; m++ {
				// Bit comparison: NaN and signed zero must survive exactly.
				if math.Float64bits(cells[i].Values[m]) != math.Float64bits(want[i].Values[m]) {
					t.Fatalf("day %d cell %d metric %d: %v, want %v (bit-exact)", d, i, m, cells[i].Values[m], want[i].Values[m])
				}
			}
		}
	}
	if _, _, err := r.ReadDayAppend(nil); err != io.EOF {
		t.Fatalf("exhausted feed read = %v, want io.EOF", err)
	}
}

func TestFileHeaderErrors(t *testing.T) {
	good := encodeTraces(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(b []byte) []byte { return b[:7] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"wrong kind", func(b []byte) []byte { b[5] = KindKPI; return b }, ErrKind},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte(nil), good...))
			for _, lenient := range []bool{false, true} {
				_, err := NewTraceReaderOpts(bytes.NewReader(data), Options{Name: "t.col", Lenient: lenient})
				if err == nil {
					t.Fatalf("lenient=%v: header accepted", lenient)
				}
				if c.want != ErrTruncated && !errors.Is(err, c.want) {
					t.Fatalf("lenient=%v: err = %v, want %v", lenient, err, c.want)
				}
				var be *BlockError
				if !errors.As(err, &be) {
					t.Fatalf("lenient=%v: err %T is not a *BlockError", lenient, err)
				}
				if !strings.HasPrefix(err.Error(), "colfmt: t.col:0:") {
					t.Fatalf("lenient=%v: err %q lacks file:offset context", lenient, err)
				}
			}
		})
	}
}

// blockOffsets walks the encoded feed and returns each block's start.
func blockOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := fileHeaderSize
	for off < len(data) {
		offs = append(offs, off)
		plen := int(binary.LittleEndian.Uint32(data[off+12 : off+16]))
		off += blockHeaderSize + plen + 4
	}
	if off != len(data) {
		t.Fatalf("block walk ended at %d of %d bytes", off, len(data))
	}
	return offs
}

// recrc recomputes a block's CRC footer after a deliberate mutation, so
// the damage is semantic rather than a checksum mismatch.
func recrc(data []byte, blockOff int) {
	plen := int(binary.LittleEndian.Uint32(data[blockOff+12 : blockOff+16]))
	end := blockOff + blockHeaderSize + plen
	sum := crc32.ChecksumIEEE(data[blockOff:end])
	binary.LittleEndian.PutUint32(data[end:], sum)
}

func TestCorruptBlockStrict(t *testing.T) {
	good := encodeTraces(t)
	offs := blockOffsets(t, good)
	day3 := offs[0]
	plen := int(binary.LittleEndian.Uint32(good[day3+12 : day3+16]))

	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"payload bit flip", func(b []byte) { b[day3+blockHeaderSize+2] ^= 0x40 }, ErrChecksum},
		{"header count blown up", func(b []byte) { b[day3+11] ^= 0x40 }, ErrCorrupt}, // countB outgrows the payload bounds
		{"header small flip", func(b []byte) { b[day3+4] ^= 0x01 }, ErrChecksum},     // countA off by one, caught by the CRC
		{"non-canonical visit word", func(b []byte) {
			// Highest byte of the last pack word (little-endian): set bit 31.
			b[day3+blockHeaderSize+plen-1] |= 0x80
			recrc(b, day3)
		}, ErrCorrupt},
		{"truncated tail", func(b []byte) {}, ErrTruncated}, // handled below by slicing
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := append([]byte(nil), good...)
			c.mutate(data)
			if c.want == ErrTruncated {
				data = data[:day3+blockHeaderSize+3]
			}
			_, _, _, err := readAllTraces(t, data, Options{Name: "t.col"})
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
			var be *BlockError
			if !errors.As(err, &be) {
				t.Fatalf("err %T is not a *BlockError", err)
			}
			if be.Offset != int64(day3) {
				t.Fatalf("error offset %d, want block start %d", be.Offset, day3)
			}
		})
	}
}

func TestCorruptBlockLenient(t *testing.T) {
	good := encodeTraces(t)
	offs := blockOffsets(t, good)
	fix := traceFixture()

	for _, c := range []struct {
		name   string
		mutate func([]byte)
	}{
		{"payload bit flip", func(b []byte) { b[offs[0]+blockHeaderSize+2] ^= 0x40 }},
		{"non-canonical visit word", func(b []byte) {
			plen := int(binary.LittleEndian.Uint32(b[offs[0]+12 : offs[0]+16]))
			b[offs[0]+blockHeaderSize+plen-1] |= 0x80
			recrc(b, offs[0])
		}},
		{"header bit flip", func(b []byte) { b[offs[0]+4] ^= 0x01 }},          // caught by CRC, skip to next block
		{"header count blown up resync", func(b []byte) { b[offs[0]+11] ^= 0x40 }}, // bounds reject; resync via payload length
	} {
		t.Run(c.name, func(t *testing.T) {
			data := append([]byte(nil), good...)
			c.mutate(data)
			var skips []int
			opt := Options{Name: "t.col", Lenient: true, OnSkip: func(name string, off int, err error) {
				if name != "t.col" {
					t.Errorf("OnSkip name %q", name)
				}
				skips = append(skips, off)
			}}
			got, order, r, err := readAllTraces(t, data, opt)
			if err != nil {
				t.Fatalf("lenient replay failed: %v", err)
			}
			if len(order) != 2 || order[0] != 4 || order[1] != 5 {
				t.Fatalf("days read = %v, want [4 5]", order)
			}
			sameTraces(t, 5, got[5], fix[5])
			if r.Skipped() != 1 {
				t.Fatalf("Skipped() = %d, want 1", r.Skipped())
			}
			if len(skips) != 1 || skips[0] != offs[0] {
				t.Fatalf("OnSkip offsets %v, want [%d]", skips, offs[0])
			}
		})
	}
}

func TestTruncatedTailLenient(t *testing.T) {
	good := encodeTraces(t)
	offs := blockOffsets(t, good)
	// Cut mid-way through the last block's payload.
	data := append([]byte(nil), good[:offs[2]+blockHeaderSize+5]...)
	got, order, r, err := readAllTraces(t, data, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient replay failed: %v", err)
	}
	if len(order) != 2 || order[0] != 3 || order[1] != 4 {
		t.Fatalf("days read = %v, want [3 4]", order)
	}
	sameTraces(t, 3, got[3], traceFixture()[3])
	if r.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", r.Skipped())
	}
}

func TestKPICorruptLenient(t *testing.T) {
	var buf bytes.Buffer
	w := NewKPIWriter(&buf)
	fix := kpiFixture()
	for _, d := range kpiDays {
		if err := w.WriteDay(d, fix[d]); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	offs := blockOffsets(t, data)
	data[offs[0]+blockHeaderSize] ^= 0xFF

	r, err := NewKPIReaderOpts(bytes.NewReader(data), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	day, cells, err := r.ReadDayAppend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if day != 11 || len(cells) != 1 || r.Skipped() != 1 {
		t.Fatalf("day=%d cells=%d skipped=%d, want 11/1/1", day, len(cells), r.Skipped())
	}
	// Strict mode on the same bytes fails with offset context instead.
	rs, err := NewKPIReaderOpts(bytes.NewReader(data), Options{Name: "k.col"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rs.ReadDayAppend(nil)
	var be *BlockError
	if !errors.As(err, &be) || be.Offset != int64(offs[0]) || !errors.Is(err, ErrChecksum) {
		t.Fatalf("strict err = %v, want checksum BlockError at %d", err, offs[0])
	}
}

// TestTraceReadSteadyStateAllocs pins the tentpole guarantee: a warm
// reader refilling a warm DayBuffer decodes a day block with zero heap
// allocations — the property that lets columnar replay keep up with the
// zero-alloc simulation path it feeds.
func TestTraceReadSteadyStateAllocs(t *testing.T) {
	data := encodeTraces(t)
	br := bytes.NewReader(data)
	r, err := NewTraceReader(br)
	if err != nil {
		t.Fatal(err)
	}
	buf := mobsim.NewDayBuffer()
	warm := func() {
		br.Reset(data)
		if err := r.Reset(br); err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := r.ReadDayInto(buf); err == io.EOF {
				return
			} else if err != nil {
				t.Fatal(err)
			}
			buf.Traces()
		}
	}
	warm()
	allocs := testing.AllocsPerRun(10, warm)
	if allocs > 0 {
		t.Errorf("steady-state columnar trace replay allocates %.1f times per feed, want 0", allocs)
	}
}

// TestKPIReadSteadyStateAllocs pins the same guarantee for the KPI
// reader with a reused destination slice.
func TestKPIReadSteadyStateAllocs(t *testing.T) {
	var w bytes.Buffer
	kw := NewKPIWriter(&w)
	fix := kpiFixture()
	for _, d := range kpiDays {
		if err := kw.WriteDay(d, fix[d]); err != nil {
			t.Fatal(err)
		}
	}
	data := w.Bytes()
	br := bytes.NewReader(data)
	r, err := NewKPIReader(br)
	if err != nil {
		t.Fatal(err)
	}
	var cells []traffic.CellDay
	warm := func() {
		br.Reset(data)
		if err := r.Reset(br); err != nil {
			t.Fatal(err)
		}
		for {
			_, out, err := r.ReadDayAppend(cells[:0])
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			cells = out
		}
	}
	warm()
	allocs := testing.AllocsPerRun(10, warm)
	if allocs > 0 {
		t.Errorf("steady-state columnar KPI replay allocates %.1f times per feed, want 0", allocs)
	}
}

// TestHugeClaimedPayload pins the fuzz-hardening bound: a block header
// claiming a multi-gigabyte payload on a tiny file must fail fast at
// EOF (with a truncation error), not attempt the full allocation.
func TestHugeClaimedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, blockHeaderSize)
	binary.LittleEndian.PutUint32(hdr[4:8], 1<<20)       // 1M users
	binary.LittleEndian.PutUint32(hdr[8:12], 1<<26)      // 67M visits
	binary.LittleEndian.PutUint32(hdr[12:16], 545259520) // ~520 MiB claimed, within header bounds
	buf.Write(hdr)
	buf.WriteString("short")
	_, _, _, err := readAllTraces(t, buf.Bytes(), Options{})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want truncation", err)
	}
}
