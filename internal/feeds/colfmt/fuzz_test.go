package colfmt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/mobsim"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// FuzzColReadDay feeds arbitrary bytes to both columnar readers in both
// failure modes and pins the reliability contract: never panic, never
// loop forever, and every failure is either io.EOF, a header error at
// offset 0, or a typed *BlockError carrying file:offset context. Seeds
// cover valid feeds of both kinds plus structured near-misses.
func FuzzColReadDay(f *testing.F) {
	var tb bytes.Buffer
	tw := NewTraceWriter(&tb)
	tw.WriteDay(3, []mobsim.DayTrace{
		{User: 5, Visits: []mobsim.Visit{mkVisit(9, 1, 300, true), mkVisit(2, 4, 86400, false)}},
		{User: 2, Visits: []mobsim.Visit{mkVisit(0, 0, 0, false)}},
	})
	tw.WriteDay(4, nil)
	f.Add(tb.Bytes())

	var kb bytes.Buffer
	kw := NewKPIWriter(&kb)
	cell := traffic.CellDay{Cell: 7}
	for m := 0; m < traffic.NumMetrics; m++ {
		cell.Values[m] = 1.5 * float64(m)
	}
	kw.WriteDay(10, []traffic.CellDay{cell})
	f.Add(kb.Bytes())

	f.Add([]byte(Magic))
	f.Add([]byte("MNOC\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("MNOC\x01\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	truncated := append([]byte(nil), tb.Bytes()...)
	f.Add(truncated[:len(truncated)-6])

	f.Fuzz(func(t *testing.T, data []byte) {
		checkErr := func(err error) {
			if err == nil || err == io.EOF {
				return
			}
			var be *BlockError
			if !errors.As(err, &be) {
				t.Fatalf("error %v (%T) is not a *BlockError", err, err)
			}
			if be.Offset < 0 || be.Offset > int64(len(data)) {
				t.Fatalf("error offset %d outside the %d-byte input", be.Offset, len(data))
			}
		}
		for _, lenient := range []bool{false, true} {
			opt := Options{Name: "fuzz", Lenient: lenient}

			tr, err := NewTraceReaderOpts(bytes.NewReader(data), opt)
			checkErr(err)
			if err == nil {
				buf := mobsim.NewDayBuffer()
				for i := 0; i <= len(data); i++ { // each read consumes ≥1 block header
					day, rerr := tr.ReadDayInto(buf)
					if rerr != nil {
						checkErr(rerr)
						break
					}
					// Whatever decodes must satisfy the invariants the CSV
					// reader enforces per row.
					_ = day
					for _, trc := range buf.Traces() {
						for _, v := range trc.Visits {
							if int(v.Bin()) >= timegrid.BinsPerDay || v.Seconds() < 0 || v.Tower() < 0 {
								t.Fatalf("decoded out-of-range visit %v", v)
							}
						}
					}
				}
			}

			kr, err := NewKPIReaderOpts(bytes.NewReader(data), opt)
			checkErr(err)
			if err == nil {
				var cells []traffic.CellDay
				for i := 0; i <= len(data); i++ {
					_, out, rerr := kr.ReadDayAppend(cells[:0])
					cells = out
					if rerr != nil {
						checkErr(rerr)
						break
					}
					for i := range cells {
						if cells[i].Cell < 0 {
							t.Fatalf("decoded negative cell ID %d", cells[i].Cell)
						}
					}
				}
			}
		}
	})
}
