// Package colfmt is the binary columnar day-block feed format: the
// replay interchange that survives the million-subscriber rung where
// CSV parsing (encoding/csv + strconv) becomes the pipeline's last I/O
// bottleneck. A feed is a sequence of per-day tiles; inside a tile each
// record field lives in its own column, and the visit columns are the
// two packed 32-bit words of mobsim.Visit verbatim, so the hot read
// path does arena copies instead of parsing.
//
// # Layout
//
// Every file opens with a 16-byte header:
//
//	bytes 0-3   magic "MNOC"
//	byte  4     format version (currently 1)
//	byte  5     feed kind (1 = traces, 2 = KPI cells)
//	bytes 6-7   reserved (zero)
//	bytes 8-15  user range [lo, hi] (uint32 LE each) covered by a
//	            partition shard; 0,0 means unpartitioned/unspecified
//
// then day blocks, back to back. Each block is:
//
//	bytes 0-3    day (int32 LE)
//	bytes 4-7    countA (uint32 LE): users (traces) / cells (KPI)
//	bytes 8-11   countB (uint32 LE): visits (traces) / metrics (KPI)
//	bytes 12-15  payload length (uint32 LE)
//	...          payload (columnar, see below)
//	last 4 bytes CRC-32 (IEEE) over the block header and payload
//
// A trace payload is four sections: user IDs (first absolute uvarint,
// then zig-zag deltas), per-user visit counts (uvarints — the deltas of
// the per-user offsets), then the tower column (countB × uint32 LE) and
// the packed seconds|bin|residence column (countB × uint32 LE). A KPI
// payload is the cell ID column (absolute uvarint + zig-zag deltas)
// followed by countB metric columns of countA float64 bit patterns
// (uint64 LE) each.
//
// # Failure contract
//
// Readers mirror the strict/lenient semantics of the CSV readers in
// package feeds (RELIABILITY.md has the full contract), with the day
// block taking the role of the row: strict mode fails the replay on the
// first bad block with file:offset context (a *BlockError), lenient
// mode skips the whole block, counts it (Skipped) and reports it
// through OnSkip with the block's starting byte offset. File header
// errors and I/O errors are fatal in both modes; a truncated tail is a
// skippable block in lenient mode.
package colfmt

import (
	"errors"
	"fmt"
)

// Magic identifies a columnar feed file; feeds.OpenDir sniffs it to
// auto-detect the format regardless of file extension.
const Magic = "MNOC"

// Version is the format version this package writes and accepts.
const Version = 1

// Feed kinds, byte 5 of the file header.
const (
	KindTraces = 1
	KindKPI    = 2
)

const (
	fileHeaderSize  = 16
	blockHeaderSize = 16
	// readChunk bounds how much payload is requested per read call, so a
	// corrupt length field claiming gigabytes fails at EOF after at most
	// one chunk of allocation instead of exhausting memory first.
	readChunk = 1 << 20
)

// Typed failure causes, wrapped in *BlockError (or a header error) with
// file:offset context; match with errors.Is.
var (
	ErrBadMagic  = errors.New("bad magic (not a columnar feed)")
	ErrVersion   = errors.New("unsupported format version")
	ErrKind      = errors.New("wrong feed kind")
	ErrTruncated = errors.New("truncated block")
	ErrChecksum  = errors.New("block checksum mismatch")
	ErrCorrupt   = errors.New("corrupt block")
)

// BlockError is a failed day block: the feed's label, the byte offset
// where the block starts, and the cause (one of the sentinel errors
// above, usually wrapped with detail). Its rendering follows the CSV
// readers' file:line convention with the offset in the line position.
type BlockError struct {
	Name   string
	Offset int64
	Err    error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("colfmt: %s:%d: %v", e.Name, e.Offset, e.Err)
}

func (e *BlockError) Unwrap() error { return e.Err }

// Options configures a reader's failure behaviour; it mirrors
// feeds.Options with the day block as the unit of damage.
type Options struct {
	// Name is the feed's file name (or any label), prefixed to block
	// errors and passed to OnSkip. Empty: a generic feed label.
	Name string
	// Lenient makes the reader skip corrupt day blocks — checksum
	// mismatches, malformed columns, out-of-range values, a truncated
	// final block — instead of failing the replay. Skipped blocks are
	// counted (Skipped) and reported through OnSkip. File header errors
	// and I/O errors are fatal in both modes.
	Lenient bool
	// OnSkip, when non-nil, observes every skipped block in lenient
	// mode: the feed name, the block's starting byte offset and the
	// block's error.
	OnSkip func(name string, offset int, err error)
}

// label returns the feed name for error context.
func (o *Options) label(fallback string) string {
	if o.Name != "" {
		return o.Name
	}
	return fallback
}

// growTo returns b resized to n bytes, preserving its prefix and
// growing capacity geometrically; a warm buffer is returned as-is, so
// steady-state reads do not allocate.
func growTo(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	c := 2 * cap(b)
	if c < n {
		c = n
	}
	nb := make([]byte, n, c)
	copy(nb, b)
	return nb
}
