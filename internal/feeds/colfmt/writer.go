package colfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/mobsim"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// fileHeader assembles the 16-byte file header.
func fileHeader(kind byte, userLo, userHi uint32) [fileHeaderSize]byte {
	var h [fileHeaderSize]byte
	copy(h[:4], Magic)
	h[4] = Version
	h[5] = kind
	binary.LittleEndian.PutUint32(h[8:12], userLo)
	binary.LittleEndian.PutUint32(h[12:16], userHi)
	return h
}

// blockStart appends a block header placeholder and returns the buffer;
// the counts and payload length are patched in by finishBlock.
func blockStart(b []byte, day timegrid.SimDay) ([]byte, error) {
	if int64(day) < math.MinInt32 || int64(day) > math.MaxInt32 {
		return b, fmt.Errorf("colfmt: day %d does not fit the int32 day field", day)
	}
	b = b[:0]
	b = append(b, make([]byte, blockHeaderSize)...)
	binary.LittleEndian.PutUint32(b[0:4], uint32(int32(day)))
	return b, nil
}

// finishBlock patches the header counts, appends the CRC footer and
// writes the block.
func finishBlock(w io.Writer, b []byte, countA, countB int) (int, error) {
	if countA > math.MaxUint32 || countB > math.MaxUint32 {
		return 0, fmt.Errorf("colfmt: block counts %d/%d overflow uint32", countA, countB)
	}
	binary.LittleEndian.PutUint32(b[4:8], uint32(countA))
	binary.LittleEndian.PutUint32(b[8:12], uint32(countB))
	binary.LittleEndian.PutUint32(b[12:16], uint32(len(b)-blockHeaderSize))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	n, err := w.Write(b)
	return n, err
}

// TraceWriter streams day traces as columnar day blocks. The file
// header goes out with the first day (or Flush, so an empty feed is
// still a valid file); one WriteDay is one block.
type TraceWriter struct {
	w       io.Writer
	started bool
	lo, hi  uint32
	buf     []byte
}

// NewTraceWriter returns a writer for an unpartitioned trace feed.
func NewTraceWriter(w io.Writer) *TraceWriter { return &TraceWriter{w: w} }

// NewTraceWriterRange returns a writer stamping the partition shard's
// user range [lo, hi] into the file header.
func NewTraceWriterRange(w io.Writer, lo, hi uint32) *TraceWriter {
	return &TraceWriter{w: w, lo: lo, hi: hi}
}

func (t *TraceWriter) header() error {
	if t.started {
		return nil
	}
	h := fileHeader(KindTraces, t.lo, t.hi)
	if _, err := t.w.Write(h[:]); err != nil {
		return err
	}
	t.started = true
	return nil
}

// WriteDay appends one day block. An empty trace slice still writes a
// block: partition shards keep every day present so the replay day
// cursor stays aligned with the KPI and event feeds.
func (t *TraceWriter) WriteDay(day timegrid.SimDay, traces []mobsim.DayTrace) error {
	if err := t.header(); err != nil {
		return err
	}
	b, err := blockStart(t.buf, day)
	if err != nil {
		return err
	}
	// User ID column: absolute first, zig-zag deltas after.
	prev := int64(0)
	for i := range traces {
		u := int64(traces[i].User)
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(u))
		} else {
			b = binary.AppendVarint(b, u-prev)
		}
		prev = u
	}
	// Per-user visit counts (the offset deltas).
	visits := 0
	for i := range traces {
		b = binary.AppendUvarint(b, uint64(len(traces[i].Visits)))
		visits += len(traces[i].Visits)
	}
	// Tower column, then the packed seconds|bin|residence column — the
	// two Visit words verbatim.
	for i := range traces {
		for _, v := range traces[i].Visits {
			tower, _ := v.Words()
			b = binary.LittleEndian.AppendUint32(b, tower)
		}
	}
	for i := range traces {
		for _, v := range traces[i].Visits {
			_, pack := v.Words()
			b = binary.LittleEndian.AppendUint32(b, pack)
		}
	}
	_, err = finishBlock(t.w, b, len(traces), visits)
	t.buf = b[:0]
	return err
}

// Flush finalizes the file, writing the header if no day has been
// written yet. (Blocks are written eagerly; there is nothing buffered.)
func (t *TraceWriter) Flush() error { return t.header() }

// KPIWriter streams per-cell daily KPI records as columnar day blocks.
type KPIWriter struct {
	w       io.Writer
	started bool
	buf     []byte
}

// NewKPIWriter returns a writer; the file header goes out with the
// first day (or Flush).
func NewKPIWriter(w io.Writer) *KPIWriter { return &KPIWriter{w: w} }

func (k *KPIWriter) header() error {
	if k.started {
		return nil
	}
	h := fileHeader(KindKPI, 0, 0)
	if _, err := k.w.Write(h[:]); err != nil {
		return err
	}
	k.started = true
	return nil
}

// WriteDay appends one day of cell records as a block.
func (k *KPIWriter) WriteDay(day timegrid.SimDay, cells []traffic.CellDay) error {
	if err := k.header(); err != nil {
		return err
	}
	b, err := blockStart(k.buf, day)
	if err != nil {
		return err
	}
	// Cell ID column: absolute first, zig-zag deltas after.
	prev := int64(0)
	for i := range cells {
		c := int64(cells[i].Cell)
		if c < 0 || c > math.MaxInt32 {
			return fmt.Errorf("colfmt: cell ID %d out of range [0,%d]", c, math.MaxInt32)
		}
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(c))
		} else {
			b = binary.AppendVarint(b, c-prev)
		}
		prev = c
	}
	// One column per metric, cells in row order, raw float64 bits.
	for m := 0; m < traffic.NumMetrics; m++ {
		for i := range cells {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(cells[i].Values[m]))
		}
	}
	_, err = finishBlock(k.w, b, len(cells), traffic.NumMetrics)
	k.buf = b[:0]
	return err
}

// Flush finalizes the file, writing the header if no day has been
// written yet.
func (k *KPIWriter) Flush() error { return k.header() }
