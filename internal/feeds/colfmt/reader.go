package colfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/mobsim"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

// blockHead is a decoded day-block header.
type blockHead struct {
	day            int32
	countA, countB uint32
	payloadLen     uint32
}

// blockReader is the machinery shared by the trace and KPI readers:
// file header validation, block framing, CRC checking, chunked payload
// reads into reused scratch, offset tracking and the strict/lenient
// skip protocol.
type blockReader struct {
	r        io.Reader
	opt      Options
	kind     byte
	fallback string

	off     int64
	skipped int64
	scratch []byte
	// hdr is the 16-byte header scratch; a field rather than a local so
	// the io.ReadFull interface call does not force a heap escape on
	// every block.
	hdr [blockHeaderSize]byte

	userLo, userHi uint32
}

func (b *blockReader) label() string { return b.opt.label(b.fallback) }

// init (re)binds the reader to a stream and validates the file header.
// Scratch capacity is retained, so resetting a warm reader onto a new
// stream reads without allocating.
func (b *blockReader) init(r io.Reader, opt Options, kind byte, fallback string) error {
	b.r, b.opt, b.kind, b.fallback = r, opt, kind, fallback
	b.off, b.skipped = 0, 0
	h := b.hdr[:fileHeaderSize]
	n, err := io.ReadFull(b.r, h)
	b.off += int64(n)
	if err != nil {
		return &BlockError{Name: b.label(), Offset: 0, Err: fmt.Errorf("reading file header: %w", err)}
	}
	switch {
	case string(h[:4]) != Magic:
		err = ErrBadMagic
	case h[4] != Version:
		err = fmt.Errorf("%w %d (this build reads %d)", ErrVersion, h[4], Version)
	case h[5] != b.kind:
		err = fmt.Errorf("%w %d (want %d)", ErrKind, h[5], b.kind)
	}
	if err != nil {
		return &BlockError{Name: b.label(), Offset: 0, Err: err}
	}
	b.userLo = binary.LittleEndian.Uint32(h[8:12])
	b.userHi = binary.LittleEndian.Uint32(h[12:16])
	return nil
}

// skip records one lenient-mode block skip.
func (b *blockReader) skip(off int64, err error) {
	b.skipped++
	if b.opt.OnSkip != nil {
		b.opt.OnSkip(b.label(), int(off), err)
	}
}

// readN reads n bytes into scratch, chunked so a corrupt length field
// fails at EOF after bounded allocation. It returns how many bytes
// arrived; err is non-nil when fewer than n did.
func (b *blockReader) readN(n int) (int, error) {
	got := 0
	for got < n {
		step := n - got
		if step > readChunk {
			step = readChunk
		}
		b.scratch = growTo(b.scratch, got+step)
		m, err := io.ReadFull(b.r, b.scratch[got:got+step])
		got += m
		b.off += int64(m)
		if err != nil {
			return got, err
		}
	}
	return n, nil
}

// nextBlock reads, frames and CRC-checks the next day block, returning
// its header, payload (aliasing scratch, valid until the next read) and
// starting offset. validate vets the header's counts against the
// payload length before anything is allocated. It returns io.EOF at a
// clean end of feed, and otherwise applies the strict/lenient contract:
// in lenient mode damaged blocks are skipped and the scan continues.
func (b *blockReader) nextBlock(validate func(blockHead) error) (blockHead, []byte, int64, error) {
	for {
		start := b.off
		hb := b.hdr[:]
		n, err := io.ReadFull(b.r, hb)
		b.off += int64(n)
		if n == 0 && err == io.EOF {
			return blockHead{}, nil, start, io.EOF
		}
		if err != nil {
			terr := fmt.Errorf("%w: %d-byte block header fragment", ErrTruncated, n)
			if b.opt.Lenient {
				b.skip(start, terr)
				return blockHead{}, nil, start, io.EOF
			}
			return blockHead{}, nil, start, &BlockError{Name: b.label(), Offset: start, Err: terr}
		}
		h := blockHead{
			day:        int32(binary.LittleEndian.Uint32(hb[0:4])),
			countA:     binary.LittleEndian.Uint32(hb[4:8]),
			countB:     binary.LittleEndian.Uint32(hb[8:12]),
			payloadLen: binary.LittleEndian.Uint32(hb[12:16]),
		}
		if verr := validate(h); verr != nil {
			verr = fmt.Errorf("%w: %v", ErrCorrupt, verr)
			if !b.opt.Lenient {
				return blockHead{}, nil, start, &BlockError{Name: b.label(), Offset: start, Err: verr}
			}
			// Resync by trusting the claimed payload length; when that too
			// is damaged this runs into EOF or the next CRC failure, and
			// the tail degrades to further skipped blocks.
			b.skip(start, verr)
			if _, err := b.readN(int(h.payloadLen) + 4); err != nil {
				return blockHead{}, nil, start, io.EOF
			}
			continue
		}
		want := int(h.payloadLen) + 4
		if got, rerr := b.readN(want); rerr != nil {
			terr := fmt.Errorf("%w: %d of %d payload bytes", ErrTruncated, got, want)
			if b.opt.Lenient {
				b.skip(start, terr)
				return blockHead{}, nil, start, io.EOF
			}
			return blockHead{}, nil, start, &BlockError{Name: b.label(), Offset: start, Err: terr}
		}
		data := b.scratch[:want]
		stored := binary.LittleEndian.Uint32(data[h.payloadLen:])
		sum := crc32.Update(crc32.ChecksumIEEE(hb), crc32.IEEETable, data[:h.payloadLen])
		if sum != stored {
			if b.opt.Lenient {
				b.skip(start, ErrChecksum)
				continue
			}
			return blockHead{}, nil, start, &BlockError{Name: b.label(), Offset: start, Err: ErrChecksum}
		}
		return h, data[:h.payloadLen], start, nil
	}
}

// --- day traces ------------------------------------------------------------

// TraceReader streams day traces back from the columnar format, one day
// block per ReadDayInto call. A warm reader decodes into a warm
// DayBuffer with zero allocations.
type TraceReader struct {
	b      blockReader
	users  []popsim.UserID
	counts []uint32
}

// NewTraceReader validates the file header and returns a strict reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	return NewTraceReaderOpts(r, Options{})
}

// NewTraceReaderOpts is NewTraceReader with explicit failure options.
func NewTraceReaderOpts(r io.Reader, opt Options) (*TraceReader, error) {
	t := &TraceReader{}
	if err := t.b.init(r, opt, KindTraces, "trace feed"); err != nil {
		return nil, err
	}
	return t, nil
}

// Reset rebinds the reader to a new stream (same options), revalidating
// the file header and keeping all scratch warm — the pooling hook that
// makes repeated replays allocation-free.
func (t *TraceReader) Reset(r io.Reader) error {
	return t.b.init(r, t.b.opt, KindTraces, "trace feed")
}

// Skipped returns the number of damaged blocks skipped so far (always 0
// for a strict reader: it fails on the first one instead).
func (t *TraceReader) Skipped() int64 { return t.b.skipped }

// UserRange returns the partition user range [lo, hi] stamped in the
// file header; 0,0 means unpartitioned/unspecified.
func (t *TraceReader) UserRange() (lo, hi uint32) { return t.b.userLo, t.b.userHi }

// validateTraceHead vets a trace block header: the payload length must
// be consistent with the varint and column section sizes the counts
// imply, so a corrupt header is rejected before any payload allocation.
func validateTraceHead(h blockHead) error {
	nU, nV := uint64(h.countA), uint64(h.countB)
	if nU == 0 && (nV != 0 || h.payloadLen != 0) {
		return fmt.Errorf("%d visits / %d payload bytes with zero users", nV, h.payloadLen)
	}
	min := 2*nU + 8*nV
	max := 2*binary.MaxVarintLen64*nU + 8*nV
	if p := uint64(h.payloadLen); nU > 0 && (p < min || p > max) {
		return fmt.Errorf("payload length %d outside [%d,%d] for %d users / %d visits", p, min, max, nU, nV)
	}
	return nil
}

// ReadDayInto reads the next day block into buf, reusing its arena; the
// traces are materialized with buf.Traces() and stay valid until buf's
// next Reset. It returns io.EOF when the feed is exhausted. Damaged
// blocks fail the read with file:offset context in strict mode and are
// skipped (counted, reported via OnSkip) in lenient mode — the block is
// the columnar unit of damage, so one flipped byte costs the whole day.
func (t *TraceReader) ReadDayInto(buf *mobsim.DayBuffer) (timegrid.SimDay, error) {
	for {
		h, payload, start, err := t.b.nextBlock(validateTraceHead)
		if err != nil {
			return 0, err
		}
		day := timegrid.SimDay(h.day)
		if derr := t.decode(h, payload, buf, day); derr != nil {
			derr = fmt.Errorf("%w: %v", ErrCorrupt, derr)
			if t.b.opt.Lenient {
				t.b.skip(start, derr)
				continue
			}
			return 0, &BlockError{Name: t.b.label(), Offset: start, Err: derr}
		}
		return day, nil
	}
}

// decode unpacks one CRC-clean block into buf. Any inconsistency —
// malformed varints, counts that do not sum, non-canonical visit words,
// a bin outside the day grid — reports a corrupt block; the value
// checks mirror what the CSV reader's parseTraceRow enforces per row.
func (t *TraceReader) decode(h blockHead, p []byte, buf *mobsim.DayBuffer, day timegrid.SimDay) error {
	nU, nV := int(h.countA), int(h.countB)
	buf.Reset(day)

	t.users = t.users[:0]
	prev := int64(0)
	for i := 0; i < nU; i++ {
		var id int64
		if i == 0 {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("user column: malformed varint at entry 0")
			}
			if u > math.MaxUint32 {
				return fmt.Errorf("user column: ID %d out of range", u)
			}
			id, p = int64(u), p[n:]
		} else {
			d, n := binary.Varint(p)
			if n <= 0 {
				return fmt.Errorf("user column: malformed varint at entry %d", i)
			}
			id, p = prev+d, p[n:]
		}
		if id < 0 || id > math.MaxUint32 {
			return fmt.Errorf("user column: ID %d out of range", id)
		}
		t.users = append(t.users, popsim.UserID(id))
		prev = id
	}

	t.counts = t.counts[:0]
	total := 0
	for i := 0; i < nU; i++ {
		c, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("count column: malformed varint at entry %d", i)
		}
		if c > uint64(nV) || total+int(c) > nV {
			return fmt.Errorf("count column: visit counts exceed block total %d", nV)
		}
		t.counts = append(t.counts, uint32(c))
		total += int(c)
		p = p[n:]
	}
	if total != nV {
		return fmt.Errorf("count column: visit counts sum to %d, header says %d", total, nV)
	}
	if len(p) != nV*8 {
		return fmt.Errorf("visit columns: %d bytes left for %d visits", len(p), nV)
	}

	towers, packs := p[:nV*4], p[nV*4:]
	vi := 0
	for i := 0; i < nU; i++ {
		buf.BeginUser(t.users[i])
		for k := uint32(0); k < t.counts[i]; k++ {
			tw := binary.LittleEndian.Uint32(towers[vi*4:])
			pk := binary.LittleEndian.Uint32(packs[vi*4:])
			v, ok := mobsim.VisitFromWords(tw, pk)
			if !ok {
				return fmt.Errorf("visit columns: non-canonical visit words at visit %d", vi)
			}
			if int(v.Bin()) >= timegrid.BinsPerDay {
				return fmt.Errorf("visit columns: bin %d out of range [0,%d) at visit %d", v.Bin(), timegrid.BinsPerDay, vi)
			}
			buf.Append(v)
			vi++
		}
	}
	return nil
}

// --- per-cell daily KPI records ---------------------------------------------

// KPIReader streams CellDay records back from the columnar format, one
// day block per ReadDayAppend call.
type KPIReader struct {
	b blockReader
}

// NewKPIReader validates the file header and returns a strict reader.
func NewKPIReader(r io.Reader) (*KPIReader, error) {
	return NewKPIReaderOpts(r, Options{})
}

// NewKPIReaderOpts is NewKPIReader with explicit failure options.
func NewKPIReaderOpts(r io.Reader, opt Options) (*KPIReader, error) {
	k := &KPIReader{}
	if err := k.b.init(r, opt, KindKPI, "KPI feed"); err != nil {
		return nil, err
	}
	return k, nil
}

// Reset rebinds the reader to a new stream (same options), revalidating
// the file header and keeping the scratch warm.
func (k *KPIReader) Reset(r io.Reader) error {
	return k.b.init(r, k.b.opt, KindKPI, "KPI feed")
}

// Skipped returns the number of damaged blocks skipped so far.
func (k *KPIReader) Skipped() int64 { return k.b.skipped }

// validateKPIHead vets a KPI block header; the metric column count is
// baked into the format, so a file written against a different metric
// schema is rejected here.
func validateKPIHead(h blockHead) error {
	if h.countB != uint32(traffic.NumMetrics) {
		return fmt.Errorf("block has %d metric columns, this build uses %d", h.countB, traffic.NumMetrics)
	}
	nC := uint64(h.countA)
	min := nC + 8*nC*uint64(traffic.NumMetrics)
	max := uint64(binary.MaxVarintLen64)*nC + 8*nC*uint64(traffic.NumMetrics)
	if p := uint64(h.payloadLen); p < min || p > max {
		return fmt.Errorf("payload length %d outside [%d,%d] for %d cells", p, min, max, nC)
	}
	return nil
}

// ReadDayAppend reads the next day block, appending its cell records to
// dst (pass prev[:0] to reuse capacity across days). It returns io.EOF
// when the feed is exhausted; damaged blocks follow the reader's
// strict/lenient mode like TraceReader.ReadDayInto.
func (k *KPIReader) ReadDayAppend(dst []traffic.CellDay) (timegrid.SimDay, []traffic.CellDay, error) {
	base := len(dst)
	for {
		h, payload, start, err := k.b.nextBlock(validateKPIHead)
		if err != nil {
			return 0, dst, err
		}
		day := timegrid.SimDay(h.day)
		out, derr := decodeKPI(h, payload, dst)
		if derr != nil {
			derr = fmt.Errorf("%w: %v", ErrCorrupt, derr)
			if k.b.opt.Lenient {
				dst = dst[:base] // roll back the partial decode
				k.b.skip(start, derr)
				continue
			}
			return 0, dst[:base], &BlockError{Name: k.b.label(), Offset: start, Err: derr}
		}
		return day, out, nil
	}
}

// decodeKPI unpacks one CRC-clean KPI block, appending to dst.
func decodeKPI(h blockHead, p []byte, dst []traffic.CellDay) ([]traffic.CellDay, error) {
	nC := int(h.countA)
	base := len(dst)
	prev := int64(0)
	for i := 0; i < nC; i++ {
		var id int64
		if i == 0 {
			c, n := binary.Uvarint(p)
			if n <= 0 {
				return dst, fmt.Errorf("cell column: malformed varint at entry 0")
			}
			if c > math.MaxInt32 {
				return dst, fmt.Errorf("cell column: ID %d out of range", c)
			}
			id, p = int64(c), p[n:]
		} else {
			d, n := binary.Varint(p)
			if n <= 0 {
				return dst, fmt.Errorf("cell column: malformed varint at entry %d", i)
			}
			id, p = prev+d, p[n:]
		}
		if id < 0 || id > math.MaxInt32 {
			return dst, fmt.Errorf("cell column: ID %d out of range", id)
		}
		dst = append(dst, traffic.CellDay{Cell: radio.CellID(id)})
		prev = id
	}
	if len(p) != nC*8*traffic.NumMetrics {
		return dst, fmt.Errorf("metric columns: %d bytes left for %d cells", len(p), nC)
	}
	for m := 0; m < traffic.NumMetrics; m++ {
		col := p[m*nC*8:]
		for i := 0; i < nC; i++ {
			dst[base+i].Values[m] = math.Float64frombits(binary.LittleEndian.Uint64(col[i*8:]))
		}
	}
	return dst, nil
}
