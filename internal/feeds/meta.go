package feeds

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// MetaFeedName is the provenance sidecar of a feed directory.
const MetaFeedName = "feed_meta.csv"

// Meta records the simulation stack a feed directory was generated
// from. Feeds carry tower, cell and user IDs that are only meaningful
// relative to that stack, so replay tools check this sidecar before
// interpreting them.
type Meta struct {
	Users int
	Seed  uint64
	// Scenario names the behavioural scenario the feed was generated
	// under (a registry name or spec file; empty means the calibrated
	// default, and feeds written before the column existed read back
	// empty).
	Scenario string
	// Format is the feed file format of the directory (FormatCSV or
	// FormatCol); empty for sidecars written before the column existed
	// (always CSV in practice — replay auto-detects by magic bytes
	// regardless).
	Format string
	// FormatVersion is the columnar format version (colfmt.Version)
	// when Format is FormatCol; 0 otherwise.
	FormatVersion int
	// Part and Parts identify a partition shard: this directory is
	// shard Part (0-based) of Parts. Both zero: unpartitioned.
	Part, Parts int
	// UserLo and UserHi bound (inclusive) the contiguous user ID range
	// whose traces and events this shard holds; both zero when
	// unpartitioned.
	UserLo, UserHi uint32
}

// Partitioned reports whether the sidecar describes a partition shard.
func (m Meta) Partitioned() bool { return m.Parts > 0 }

var metaHeader = []string{
	"users", "seed", "scenario",
	"format", "format_version", "part", "parts", "user_lo", "user_hi",
}

// WriteMeta persists the provenance sidecar into a feed directory.
func WriteMeta(dir string, m Meta) error {
	f, err := os.Create(filepath.Join(dir, MetaFeedName))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	rows := [][]string{metaHeader, {
		strconv.Itoa(m.Users), strconv.FormatUint(m.Seed, 10), m.Scenario,
		m.Format, strconv.Itoa(m.FormatVersion),
		strconv.Itoa(m.Part), strconv.Itoa(m.Parts),
		strconv.FormatUint(uint64(m.UserLo), 10), strconv.FormatUint(uint64(m.UserHi), 10),
	}}
	for _, rec := range rows {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// ReadMeta loads the provenance sidecar; ok is false when the directory
// has none (feeds written before the sidecar existed replay unchecked).
// The header is matched as a prefix of the current schema, so sidecars
// from before the scenario, format or partition columns existed read
// back with those fields zero.
func ReadMeta(dir string) (m Meta, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, MetaFeedName))
	if os.IsNotExist(err) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	hdr, err := r.Read()
	if err != nil {
		return Meta{}, false, fmt.Errorf("feeds: reading meta header: %w", err)
	}
	if len(hdr) < 2 || len(hdr) > len(metaHeader) || !equalRow(hdr, metaHeader[:len(hdr)]) {
		return Meta{}, false, ErrBadHeader
	}
	rec, err := r.Read()
	if err != nil {
		return Meta{}, false, fmt.Errorf("feeds: reading meta row: %w", err)
	}
	if len(rec) != len(hdr) {
		return Meta{}, false, fmt.Errorf("feeds: meta row %v does not match header %v", rec, hdr)
	}
	users, err1 := strconv.Atoi(rec[0])
	seed, err2 := strconv.ParseUint(rec[1], 10, 64)
	for _, err := range []error{err1, err2} {
		if err != nil {
			return Meta{}, false, fmt.Errorf("feeds: bad meta row %v: %w", rec, err)
		}
	}
	m = Meta{Users: users, Seed: seed}
	if len(rec) > 2 {
		m.Scenario = rec[2]
	}
	if len(rec) > 3 {
		m.Format = rec[3]
	}
	// The numeric tail columns arrived together; parse whichever are
	// present.
	for i, dst := range []*int{&m.FormatVersion, &m.Part, &m.Parts} {
		col := 4 + i
		if len(rec) <= col {
			break
		}
		v, err := strconv.Atoi(rec[col])
		if err != nil {
			return Meta{}, false, fmt.Errorf("feeds: bad meta field %s=%q: %w", metaHeader[col], rec[col], err)
		}
		*dst = v
	}
	for i, dst := range []*uint32{&m.UserLo, &m.UserHi} {
		col := 7 + i
		if len(rec) <= col {
			break
		}
		v, err := strconv.ParseUint(rec[col], 10, 32)
		if err != nil {
			return Meta{}, false, fmt.Errorf("feeds: bad meta field %s=%q: %w", metaHeader[col], rec[col], err)
		}
		*dst = uint32(v)
	}
	return m, true, nil
}
