package feeds

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/feeds/colfmt"
	"repro/internal/mobsim"
	"repro/internal/traffic"
)

// ShardDirName returns the conventional name of partition shard s
// inside a partition output directory.
func ShardDirName(s int) string { return fmt.Sprintf("shard-%02d", s) }

// PartitionDir splits the feed directory in into parts shard
// directories out/shard-00 … out/shard-NN for multi-process replay.
// Users are partitioned into contiguous ID ranges (traces within a day
// are ordered by ascending user ID, so concatenating shard outputs in
// shard order restores the exact single-process fold order — the
// property the partial-merge parity harness pins). Each shard receives:
//
//   - traces.col — the day traces of its user range. Every day block is
//     written even when empty, so each shard's replay enumerates the
//     same days and stays aligned with its KPI/event feeds.
//   - kpi.col — the cell-day records of the cells congruent to the
//     shard index mod parts (cells carry no user, and sketch merging is
//     order-independent, so any disjoint covering assignment is exact).
//   - events.csv — the control-plane events of its user range, with
//     out-of-range users (the M2M/roamer background) clamped to the
//     edge shards.
//   - feed_meta.csv — the source provenance plus the partition columns
//     (part, parts, user_lo, user_hi).
//
// The returned metas describe the shards in shard order. opt applies to
// the input readers.
func PartitionDir(in, out string, parts int, opt Options) ([]Meta, error) {
	if parts < 1 {
		return nil, fmt.Errorf("feeds: cannot partition into %d parts", parts)
	}

	// Pass 1: scan the trace feed for the user ID range. IDs are dense
	// (popsim assigns them sequentially), so equal ID spans give
	// near-equal shard populations.
	lo, hi := uint32(math.MaxUint32), uint32(0)
	seen := false
	src, err := OpenDirOpts(in, opt)
	if err != nil {
		return nil, err
	}
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.Close()
			return nil, err
		}
		for i := range b.Traces {
			u := uint32(b.Traces[i].User)
			if !seen || u < lo {
				lo = u
			}
			if !seen || u > hi {
				hi = u
			}
			seen = true
		}
		b.Release()
	}
	src.Close()
	if !seen {
		return nil, fmt.Errorf("feeds: cannot partition %s: trace feed has no users", in)
	}

	span := uint64(hi-lo) + 1
	ceil := func(a uint64) uint64 { return (a + uint64(parts) - 1) / uint64(parts) }
	shardOf := func(u uint32) int {
		switch {
		case u <= lo:
			return 0
		case u >= hi:
			return parts - 1
		default:
			return int(uint64(u-lo) * uint64(parts) / span)
		}
	}

	srcMeta, _, err := ReadMeta(in)
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, parts)
	for s := 0; s < parts; s++ {
		m := srcMeta
		m.Format, m.FormatVersion = FormatCol, colfmt.Version
		m.Part, m.Parts = s, parts
		m.UserLo = lo + uint32(ceil(uint64(s)*span))
		m.UserHi = lo + uint32(ceil(uint64(s+1)*span)) - 1
		metas[s] = m
	}

	// Pass 2: route every record to its shard.
	src, err = OpenDirOpts(in, opt)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	type shardOut struct {
		files  []*os.File
		traces *colfmt.TraceWriter
		kpi    *colfmt.KPIWriter
		events *EventWriter
	}
	outs := make([]*shardOut, parts)
	var fail error
	closeAll := func() {
		for _, o := range outs {
			if o == nil {
				continue
			}
			for _, f := range o.files {
				f.Close()
			}
		}
	}
	create := func(dir, name string) *os.File {
		if fail != nil {
			return nil
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fail = err
		}
		return f
	}
	for s := 0; s < parts; s++ {
		dir := filepath.Join(out, ShardDirName(s))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			closeAll()
			return nil, err
		}
		o := &shardOut{}
		if tf := create(dir, TraceColFeedName); tf != nil {
			o.files = append(o.files, tf)
			o.traces = colfmt.NewTraceWriterRange(tf, metas[s].UserLo, metas[s].UserHi)
		}
		if src.kpi != nil {
			if kf := create(dir, KPIColFeedName); kf != nil {
				o.files = append(o.files, kf)
				o.kpi = colfmt.NewKPIWriter(kf)
			}
		}
		if src.events != nil {
			if ef := create(dir, EventFeedName); ef != nil {
				o.files = append(o.files, ef)
				o.events = NewEventWriter(ef)
			}
		}
		outs[s] = o
		if fail != nil {
			closeAll()
			return nil, fail
		}
	}

	traceBuckets := make([][]mobsim.DayTrace, parts)
	cellBuckets := make([][]traffic.CellDay, parts)
	for {
		b, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			closeAll()
			return nil, err
		}
		for s := range traceBuckets {
			traceBuckets[s] = traceBuckets[s][:0]
			cellBuckets[s] = cellBuckets[s][:0]
		}
		for i := range b.Traces {
			s := shardOf(uint32(b.Traces[i].User))
			traceBuckets[s] = append(traceBuckets[s], b.Traces[i])
		}
		for i := range b.Cells {
			s := int(uint64(b.Cells[i].Cell) % uint64(parts))
			cellBuckets[s] = append(cellBuckets[s], b.Cells[i])
		}
		for s, o := range outs {
			// Trace day blocks are written unconditionally (even empty) to
			// keep every shard's day cursor aligned.
			if err := o.traces.WriteDay(b.Day, traceBuckets[s]); err != nil {
				fail = err
			}
			if o.kpi != nil && len(cellBuckets[s]) > 0 {
				if err := o.kpi.WriteDay(b.Day, cellBuckets[s]); err != nil {
					fail = err
				}
			}
			if o.events != nil {
				for i := range b.Events {
					if shardOf(uint32(b.Events[i].User)) == s {
						o.events.Consume(&b.Events[i])
					}
				}
			}
		}
		b.Release()
		if fail != nil {
			closeAll()
			return nil, fail
		}
	}

	for s, o := range outs {
		if err := o.traces.Flush(); err != nil && fail == nil {
			fail = err
		}
		if o.kpi != nil {
			if err := o.kpi.Flush(); err != nil && fail == nil {
				fail = err
			}
		}
		if o.events != nil {
			o.events.ensureHeader()
			if err := o.events.Flush(); err != nil && fail == nil {
				fail = err
			}
		}
		for _, f := range o.files {
			if err := f.Close(); err != nil && fail == nil {
				fail = err
			}
		}
		if fail == nil {
			if err := WriteMeta(filepath.Join(out, ShardDirName(s)), metas[s]); err != nil {
				fail = err
			}
		}
	}
	if fail != nil {
		return nil, fail
	}
	return metas, nil
}
