package mobsim

import (
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/radio"
	"repro/internal/timegrid"
)

// The memory diet of the million-subscriber ladder rests on Visit being
// exactly two machine words of four bytes: a padded or widened layout
// silently doubles the dominant allocation of the whole system (the
// DayBuffer arenas hold ~10 visits per agent per day). The array length
// must be a constant equal to 8, so this line fails to compile the
// moment a field is added or widened.
var _ [8]byte = [unsafe.Sizeof(Visit{})]byte{}

// visitEq asserts one encode/decode round trip.
func visitEq(t *testing.T, tower radio.TowerID, bin timegrid.Bin, sec int32, atRes bool) {
	t.Helper()
	v := MakeVisit(tower, bin, sec, atRes)
	if v.Tower() != tower || v.Bin() != bin || v.Seconds() != sec || v.AtResidence() != atRes {
		t.Fatalf("round trip lost data: MakeVisit(%d, %d, %d, %v) = %v decoded as (%d, %d, %d, %v)",
			tower, bin, sec, atRes, v, v.Tower(), v.Bin(), v.Seconds(), v.AtResidence())
	}
}

// TestVisitRoundTripEdges drives the packed encoding through every
// adversarial corner: field extremes (tower 0 and MaxInt32, zero and
// maximum dwell), every representable bin, and both residence flags —
// each field at its edge while the others vary, so a mask that is one
// bit short or a shift that leaks into a neighbouring field cannot
// survive.
func TestVisitRoundTripEdges(t *testing.T) {
	towers := []radio.TowerID{0, 1, 4095, 1 << 30, 1<<31 - 1}
	secs := []int32{0, 1, secondsPerBin, MaxVisitSeconds - 1, MaxVisitSeconds}
	for bin := timegrid.Bin(0); bin <= MaxVisitBin; bin++ {
		for _, tower := range towers {
			for _, sec := range secs {
				visitEq(t, tower, bin, sec, false)
				visitEq(t, tower, bin, sec, true)
			}
		}
	}
}

// TestVisitRoundTripRandom is the 10k-case randomized property test:
// any in-range (tower, bin, seconds, residence) quadruple must decode
// to exactly itself. The generator is seeded, so a failure reproduces.
func TestVisitRoundTripRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(0x51517))
	for i := 0; i < 10_000; i++ {
		tower := radio.TowerID(rnd.Int31())
		bin := timegrid.Bin(rnd.Intn(MaxVisitBin + 1))
		sec := int32(rnd.Intn(MaxVisitSeconds + 1))
		atRes := rnd.Intn(2) == 1
		visitEq(t, tower, bin, sec, atRes)
	}
}

// TestMakeVisitRejectsUnrepresentable pins the constructor's contract:
// out-of-range values are programmer errors and must panic rather than
// silently truncate into a neighbouring field.
func TestMakeVisitRejectsUnrepresentable(t *testing.T) {
	cases := []struct {
		name  string
		tower radio.TowerID
		bin   timegrid.Bin
		sec   int32
	}{
		{"negative tower", -1, 0, 100},
		{"negative bin", 0, -1, 100},
		{"bin too large", 0, MaxVisitBin + 1, 100},
		{"negative seconds", 0, 0, -1},
		{"seconds too large", 0, 0, MaxVisitSeconds + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeVisit(%d, %d, %d) did not panic", tc.tower, tc.bin, tc.sec)
				}
			}()
			MakeVisit(tc.tower, tc.bin, tc.sec, false)
		})
	}
}

// TestVisitWordsRoundTrip pins the columnar-serialization contract:
// Words exposes exactly the packed layout, VisitFromWords accepts every
// word pair a real Visit can produce, and the reassembled value is
// bit-identical to the original.
func TestVisitWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		v := MakeVisit(
			radio.TowerID(rng.Int31()),
			timegrid.Bin(rng.Intn(MaxVisitBin+1)),
			rng.Int31n(MaxVisitSeconds+1),
			rng.Intn(2) == 1,
		)
		tower, pack := v.Words()
		got, ok := VisitFromWords(tower, pack)
		if !ok {
			t.Fatalf("VisitFromWords rejected words of %v", v)
		}
		if got != v {
			t.Fatalf("VisitFromWords(%d, %d) = %v, want %v", tower, pack, got, v)
		}
	}
}

// TestVisitFromWordsRejectsNonCanonical pins rejection of word pairs no
// MakeVisit call can produce: stray bits above the residence flag and
// towers outside the signed TowerID range. Accepting them would let a
// corrupt columnar block fabricate visits the rest of the pipeline
// assumes impossible.
func TestVisitFromWordsRejectsNonCanonical(t *testing.T) {
	good := MakeVisit(7, 3, 1200, true)
	tower, pack := good.Words()
	cases := []struct {
		name        string
		tower, pack uint32
	}{
		{"stray bit 30", tower, pack | 1<<30},
		{"stray bit 31", tower, pack | 1<<31},
		{"tower sign bit", 1 << 31, pack},
		{"tower max+1", 1<<31 + 5, pack},
	}
	for _, c := range cases {
		if _, ok := VisitFromWords(c.tower, c.pack); ok {
			t.Errorf("%s: VisitFromWords(%d, %d) accepted a non-canonical encoding", c.name, c.tower, c.pack)
		}
	}
}
