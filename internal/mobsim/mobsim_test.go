package mobsim

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/census"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/timegrid"
)

var (
	fixOnce sync.Once
	fixSim  *Simulator
)

func fixture(t *testing.T) *Simulator {
	t.Helper()
	fixOnce.Do(func() {
		m := census.BuildUK(1)
		topo := radio.Build(m, radio.DefaultConfig(), 1)
		pop := popsim.Synthesize(m, topo, popsim.Config{
			Seed: 1, TargetUsers: 2500,
		})
		fixSim = New(pop, pandemic.Default(), 1)
	})
	return fixSim
}

// totalSeconds sums the dwell of a trace.
func totalSeconds(tr *DayTrace) int64 {
	var s int64
	for _, v := range tr.Visits {
		s += int64(v.Seconds())
	}
	return s
}

func TestDayTraceConservation(t *testing.T) {
	s := fixture(t)
	nightOffDays := 0
	for _, day := range []timegrid.SimDay{0, 10, 23, 40, 60, 99} {
		traces := s.Day(day)
		if len(traces) != len(s.Population().Native()) {
			t.Fatalf("day %d: %d traces for %d users", day, len(traces), len(s.Population().Native()))
		}
		for i := range traces {
			tr := &traces[i]
			// A full day is observed, except night-off days where the
			// device is invisible during bins 0-1 (8 hours).
			got := totalSeconds(tr)
			if got != 86_400 && got != 86_400-8*3600 {
				t.Fatalf("day %d user %d: %d seconds", day, tr.User, got)
			}
			var perBin [timegrid.BinsPerDay]int64
			for _, v := range tr.Visits {
				if v.Bin() < 0 || int(v.Bin()) >= timegrid.BinsPerDay {
					t.Fatalf("visit bin %d out of range", v.Bin())
				}
				if v.Seconds() <= 0 {
					t.Fatalf("non-positive visit seconds %d", v.Seconds())
				}
				perBin[v.Bin()] += int64(v.Seconds())
			}
			nightOff := got != 86_400
			if nightOff {
				nightOffDays++
				if perBin[0] != 0 || perBin[1] != 0 {
					t.Fatalf("night-off day has night visits")
				}
			}
			for b, sec := range perBin {
				if nightOff && b < 2 {
					continue
				}
				if sec != 4*3600 {
					t.Fatalf("day %d user %d bin %d has %d seconds", day, tr.User, b, sec)
				}
			}
		}
	}
	if nightOffDays == 0 {
		t.Error("no night-off agent-days observed; observability model inert")
	}
}

func TestVisitsOrderedByBin(t *testing.T) {
	s := fixture(t)
	traces := s.Day(30)
	for i := range traces {
		prev := timegrid.Bin(0)
		for _, v := range traces[i].Visits {
			if v.Bin() < prev {
				t.Fatalf("visits out of bin order for user %d", traces[i].User)
			}
			prev = v.Bin()
		}
	}
}

func TestDeterminismAndIndependence(t *testing.T) {
	s := fixture(t)
	a := s.Day(50)
	b := s.Day(50)
	if len(a) != len(b) {
		t.Fatal("trace counts differ")
	}
	for i := range a {
		if len(a[i].Visits) != len(b[i].Visits) {
			t.Fatalf("user %d visit counts differ across identical days", a[i].User)
		}
		for j := range a[i].Visits {
			if a[i].Visits[j] != b[i].Visits[j] {
				t.Fatalf("user %d visit %d differs", a[i].User, j)
			}
		}
	}
	// Day simulation is order-independent: simulating day 49 first must
	// not change day 50.
	s.Day(49)
	c := s.UserDay(a[0].User, 50)
	if len(c.Visits) != len(a[0].Visits) {
		t.Fatal("day 50 changed after simulating day 49")
	}
}

func TestNightAtResidence(t *testing.T) {
	s := fixture(t)
	pop := s.Population()
	traces := s.Day(5) // February baseline
	observed := 0
	for i := range traces {
		tr := &traces[i]
		u := pop.User(tr.User)
		var nightHome, night int64
		for _, v := range tr.Visits {
			if v.Bin() == 0 {
				night += int64(v.Seconds())
				if v.Tower() == u.HomeTower && v.AtResidence() {
					nightHome += int64(v.Seconds())
				}
			}
		}
		if night == 0 {
			continue // night-off day: device invisible
		}
		observed++
		if float64(nightHome) < 0.6*float64(night) {
			t.Errorf("user %d spends only %d/%d night seconds at home", tr.User, nightHome, night)
		}
	}
	if observed < len(traces)*3/4 {
		t.Errorf("only %d/%d users observed at night", observed, len(traces))
	}
}

func TestLockdownReducesMobility(t *testing.T) {
	s := fixture(t)
	distinctTowers := func(day timegrid.SimDay) float64 {
		traces := s.Day(day)
		var sum int
		for i := range traces {
			seen := map[radio.TowerID]bool{}
			for _, v := range traces[i].Visits {
				seen[v.Tower()] = true
			}
			sum += len(seen)
		}
		return float64(sum) / float64(len(traces))
	}
	// Tue of week 9 (baseline) vs Tue of week 14 (full lockdown).
	base := distinctTowers(timegrid.SimDay(timegrid.StudyDayOffset + 1))
	lock := distinctTowers(timegrid.SimDay(timegrid.StudyDayOffset + 36))
	if lock >= base*0.85 {
		t.Errorf("distinct towers per user: baseline %v, lockdown %v — expected a clear drop", base, lock)
	}
}

func TestRelocatedUsersAreAway(t *testing.T) {
	s := fixture(t)
	pop := s.Population()
	day := timegrid.LockdownStart.ToSimDay() + 7
	traces := s.Day(day)
	byUser := map[popsim.UserID]*DayTrace{}
	for i := range traces {
		byUser[traces[i].User] = &traces[i]
	}
	checked := 0
	for _, id := range pop.Native() {
		u := pop.User(id)
		if !u.Relocates {
			continue
		}
		checked++
		tr := byUser[id]
		for _, v := range tr.Visits {
			county := pop.Topology().Tower(v.Tower()).County
			if county != u.RelocCounty {
				t.Fatalf("relocated user %d seen in county %d, expected %d", id, county, u.RelocCounty)
			}
		}
	}
	if checked == 0 {
		t.Skip("no relocated users in the small fixture")
	}
}

func TestRelocatedUsersHomeBeforeLockdown(t *testing.T) {
	s := fixture(t)
	pop := s.Population()
	day := timegrid.SimDay(10) // mid-February
	traces := s.Day(day)
	for i := range traces {
		tr := &traces[i]
		u := pop.User(tr.User)
		if !u.Relocates {
			continue
		}
		// Night dwell must still be at the primary home in February.
		for _, v := range tr.Visits {
			if v.Bin() == 0 && v.AtResidence() {
				if pop.Topology().Tower(v.Tower()).District != u.HomeDistrict {
					t.Fatalf("relocated-to-be user %d not at primary home in February", tr.User)
				}
			}
		}
	}
}

func TestRelocationCandidatesStayHomeWhenToggleOff(t *testing.T) {
	// The population is scenario-independent, so relocation candidates
	// exist regardless of scenario; a scenario whose relocation toggle
	// is off must keep every candidate at their primary residence.
	pop := fixture(t).Population()
	noReloc, err := pandemic.NewBuilder().
		Activity(0, 1).
		Activity(28, 0.5).
		Activity(76, 0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(pop, noReloc, 1)
	day := timegrid.LockdownStart.ToSimDay() + 7
	traces := s.Day(day)
	checked := 0
	for i := range traces {
		tr := &traces[i]
		u := pop.User(tr.User)
		if !u.Relocates {
			continue
		}
		checked++
		for _, v := range tr.Visits {
			if v.AtResidence() && pop.Topology().Tower(v.Tower()).District != u.HomeDistrict {
				t.Fatalf("candidate %d relocated under a relocation-off scenario", tr.User)
			}
		}
	}
	if checked == 0 {
		t.Skip("no relocation candidates in the small fixture")
	}
}

func TestWorkAttendanceCollapses(t *testing.T) {
	s := fixture(t)
	pop := s.Population()
	attendance := func(day timegrid.SimDay) float64 {
		traces := s.Day(day)
		working, workers := 0, 0
		for i := range traces {
			u := pop.User(traces[i].User)
			if u.Profile != popsim.OfficeWorker || len(u.Anchors) < 2 {
				continue
			}
			workers++
			workTower := u.Anchors[1].Tower
			for _, v := range traces[i].Visits {
				if v.Bin() == 2 && v.Tower() == workTower && v.Seconds() > 10_000 {
					working++
					break
				}
			}
		}
		return float64(working) / float64(workers)
	}
	base := attendance(timegrid.SimDay(timegrid.StudyDayOffset + 2))  // Wed week 9
	lock := attendance(timegrid.SimDay(timegrid.StudyDayOffset + 37)) // Wed week 14
	if base < 0.5 {
		t.Errorf("baseline office attendance = %v, want most at work", base)
	}
	if lock > base*0.45 {
		t.Errorf("lockdown attendance = %v vs baseline %v, want a collapse", lock, base)
	}
}

func TestStudentsStopAfterSchoolsClose(t *testing.T) {
	s := fixture(t)
	pop := s.Population()
	attends := func(day timegrid.SimDay) int {
		traces := s.Day(day)
		n := 0
		for i := range traces {
			u := pop.User(traces[i].User)
			if u.Profile != popsim.Student || len(u.Anchors) < 2 {
				continue
			}
			for _, v := range traces[i].Visits {
				if v.Bin() == 2 && v.Tower() == u.Anchors[1].Tower && v.Seconds() > 10_000 {
					n++
					break
				}
			}
		}
		return n
	}
	// Monday of week 14 (schools closed since 20 March): zero school
	// attendance among non-relocated students.
	after := attends(timegrid.SimDay(timegrid.StudyDayOffset + 35))
	before := attends(timegrid.SimDay(timegrid.StudyDayOffset + 1))
	if before == 0 {
		t.Fatal("no students at school at baseline")
	}
	// Some "attendance" can appear by chance (leisure at the school
	// anchor is possible), so allow a small residue.
	if after > before/5 {
		t.Errorf("school attendance after closures = %d vs baseline %d", after, before)
	}
}

func TestUserDayProperty(t *testing.T) {
	s := fixture(t)
	n := uint32(len(s.Population().Native()))
	f := func(uid uint32, day uint8) bool {
		id := popsim.UserID(uid % n)
		d := timegrid.SimDay(int(day) % timegrid.SimDays)
		tr := s.UserDay(id, d)
		if tr.User != id {
			return false
		}
		got := totalSeconds(&tr)
		return got == 86_400 || got == 86_400-8*3600
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
