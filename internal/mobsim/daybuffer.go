package mobsim

import (
	"repro/internal/popsim"
	"repro/internal/timegrid"
)

// DayBuffer is an arena-backed container for one day of traces: every
// visit of every agent lives in one contiguous slice, per-agent extents
// are recorded as offsets, and the trace views are materialized once the
// day is complete. A warm buffer (capacities grown to a typical day)
// refills without any heap allocation, which is what makes the per-day
// pipeline zero-allocation in steady state.
//
// The buffer also owns the simulator's per-agent builder scratch, so one
// DayBuffer per goroutine is the unit of concurrency: Simulator.DayInto
// may run on any number of buffers in parallel, never on one buffer from
// two goroutines.
//
// Ownership: everything returned by Traces aliases the buffer and is
// valid only until the next Reset (or DayInto). Callers that keep visits
// past that point must copy them.
type DayBuffer struct {
	day    timegrid.SimDay
	visits []Visit         // the arena
	users  []popsim.UserID // one entry per trace, in append order
	starts []int           // visits offset where each trace begins
	traces []DayTrace      // materialized views into the arena

	// b is the per-agent simulation scratch (bin staging, weight
	// buffers), reused across agents and days.
	b dayBuilder
}

// NewDayBuffer returns an empty buffer; capacities grow to the working
// size on first use and are retained across Resets.
func NewDayBuffer() *DayBuffer { return &DayBuffer{} }

// Reset empties the buffer for a new day, keeping all capacity.
func (d *DayBuffer) Reset(day timegrid.SimDay) {
	d.day = day
	d.visits = d.visits[:0]
	d.users = d.users[:0]
	d.starts = d.starts[:0]
}

// Day returns the day the buffer currently holds.
func (d *DayBuffer) Day() timegrid.SimDay { return d.day }

// BeginUser starts a new trace owned by id; subsequent Append calls add
// its visits. Traces must be begun in the order they should appear.
func (d *DayBuffer) BeginUser(id popsim.UserID) {
	d.users = append(d.users, id)
	d.starts = append(d.starts, len(d.visits))
}

// Append adds one visit to the trace begun by the last BeginUser.
func (d *DayBuffer) Append(v Visit) { d.visits = append(d.visits, v) }

// Len returns the number of traces begun so far.
func (d *DayBuffer) Len() int { return len(d.users) }

// Traces materializes the per-agent views into the arena. Each view is
// capacity-clipped, so appending to one cannot clobber its neighbour.
// The result aliases the buffer and is valid until the next Reset.
func (d *DayBuffer) Traces() []DayTrace {
	n := len(d.users)
	if cap(d.traces) < n {
		d.traces = make([]DayTrace, n)
	}
	d.traces = d.traces[:n]
	for i := 0; i < n; i++ {
		end := len(d.visits)
		if i+1 < n {
			end = d.starts[i+1]
		}
		d.traces[i] = DayTrace{User: d.users[i], Visits: d.visits[d.starts[i]:end:end]}
	}
	return d.traces
}
