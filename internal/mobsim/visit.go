package mobsim

import (
	"fmt"

	"repro/internal/radio"
	"repro/internal/timegrid"
)

// Visit is one dwell interval: the agent spent Seconds attached to Tower
// during the given 4-hour bin of the day. AtResidence marks dwell at the
// agent's current residence (primary home, or the relocation home while
// relocated); the traffic engine applies WiFi offload only there.
//
// The struct is packed into 8 bytes — half the naive layout — because
// visits are the dominant per-day allocation: a DayBuffer arena holds
// ~10 of them per agent per day, so at the million-subscriber rung the
// encoding is the difference between ~80 MB and ~240 MB of hot arena.
// One word holds the tower, the other folds seconds, bin and the
// residence flag:
//
//	word 0  tower    uint32           full TowerID range
//	word 1  bits  0–20  seconds       0..MaxVisitSeconds (a day is 86 400)
//	        bits 21–28  bin           full uint8 range (BinsPerDay is 6)
//	        bit  29     at-residence
//
// Fields are reached through the Tower/Bin/Seconds/AtResidence
// accessors; values are built with MakeVisit, which rejects encodings
// that would not round-trip. The packed form is a pure re-encoding:
// pack→unpack is bit-identical for every representable visit, so every
// consumer of the old open-struct layout produces unchanged output.
type Visit struct {
	tower uint32
	pack  uint32
}

// The packed-word layout of Visit.
const (
	visitSecondsBits = 21
	visitBinShift    = visitSecondsBits
	visitResShift    = visitBinShift + 8

	// MaxVisitSeconds is the largest dwell a Visit can carry. A full
	// day is 86,400 seconds, so the 21-bit field leaves >24× headroom
	// for synthetic feeds with multi-day dwell records.
	MaxVisitSeconds = 1<<visitSecondsBits - 1

	// MaxVisitBin is the largest bin index a Visit can carry (the full
	// uint8 range; the simulator only uses 0..BinsPerDay-1).
	MaxVisitBin = 1<<8 - 1
)

// MakeVisit packs one dwell interval. It panics on values the 8-byte
// encoding cannot represent losslessly — a negative tower or dwell,
// seconds above MaxVisitSeconds, or a bin outside the uint8 range.
// Boundary-crossing decoders (feeds) validate ranges first and report
// row errors instead of panicking.
func MakeVisit(tower radio.TowerID, bin timegrid.Bin, seconds int32, atResidence bool) Visit {
	if tower < 0 {
		panic(fmt.Sprintf("mobsim: MakeVisit tower %d out of range", tower))
	}
	if bin < 0 || bin > MaxVisitBin {
		panic(fmt.Sprintf("mobsim: MakeVisit bin %d out of range", bin))
	}
	if seconds < 0 || seconds > MaxVisitSeconds {
		panic(fmt.Sprintf("mobsim: MakeVisit seconds %d out of range", seconds))
	}
	pack := uint32(seconds) | uint32(bin)<<visitBinShift
	if atResidence {
		pack |= 1 << visitResShift
	}
	return Visit{tower: uint32(tower), pack: pack}
}

// Tower returns the tower the agent was attached to.
func (v Visit) Tower() radio.TowerID { return radio.TowerID(v.tower) }

// Bin returns the 4-hour bin of the day the dwell falls in.
func (v Visit) Bin() timegrid.Bin { return timegrid.Bin(v.pack >> visitBinShift & 0xFF) }

// Seconds returns the dwell length in seconds.
func (v Visit) Seconds() int32 { return int32(v.pack & MaxVisitSeconds) }

// AtResidence reports whether the dwell is at the agent's current
// residence (WiFi-offload territory for the traffic engine).
func (v Visit) AtResidence() bool { return v.pack>>visitResShift&1 == 1 }

// visitPackBits is the number of meaningful bits in the packed word:
// seconds, bin and the residence flag. Bits above it must be zero for a
// word pair to be a valid Visit encoding.
const visitPackBits = visitResShift + 1

// Words returns the visit's two packed 32-bit words — the tower index
// and the seconds|bin|residence word — exactly as laid out in memory.
// They are the unit of columnar serialization (internal/feeds/colfmt):
// a feed can persist visits without decoding them and reload them with
// VisitFromWords, bit-identically.
func (v Visit) Words() (tower, pack uint32) { return v.tower, v.pack }

// VisitFromWords reassembles a Visit from its packed words. ok is false
// when the words are not a canonical encoding — a pack word with bits
// set above the residence flag, or a tower outside the non-negative
// TowerID range — so boundary-crossing decoders can reject corrupt
// input instead of fabricating visits MakeVisit could never produce.
func VisitFromWords(tower, pack uint32) (v Visit, ok bool) {
	if pack>>visitPackBits != 0 || tower > 1<<31-1 {
		return Visit{}, false
	}
	return Visit{tower: tower, pack: pack}, true
}

// String renders the visit for test failures and debugging.
func (v Visit) String() string {
	return fmt.Sprintf("Visit{Tower:%d Bin:%d Seconds:%d AtResidence:%t}",
		v.Tower(), v.Bin(), v.Seconds(), v.AtResidence())
}
