// Package mobsim simulates day-by-day trajectories for the synthetic
// population: for every agent and simulated day it produces the sequence
// of (tower, 4-hour bin, dwell seconds) visits that the paper's
// measurement infrastructure would observe for that user.
//
// The simulator is streaming by design: callers ask for one day at a
// time and aggregate, so memory stays flat regardless of the simulated
// horizon. Every agent-day is generated from an independent PRNG stream
// keyed by (seed, user, day), making any single agent-day reproducible in
// isolation — a property the tests rely on.
package mobsim

import (
	"repro/internal/census"
	"repro/internal/pandemic"
	"repro/internal/popsim"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/timegrid"
)

// DayTrace is the full set of visits of one agent over one day. Visits
// are ordered by bin; total seconds sum to 86,400.
type DayTrace struct {
	User   popsim.UserID
	Visits []Visit
}

// secondsPerBin is the length of one 4-hour bin.
const secondsPerBin = timegrid.BinHours * 3600

// Simulator generates day traces for a population under a scenario.
type Simulator struct {
	pop   *popsim.Population
	scen  *pandemic.Scenario
	topo  *radio.Topology
	model *census.Model
	seed  uint64

	// cols is the population's struct-of-arrays mirror: the per-agent
	// prologue runs once per agent per day, so it reads the dense
	// columns instead of dereferencing fat User structs.
	cols *popsim.Columns

	// homeAlt caches a per-user alternate tower near home, modelling the
	// cell-reselection churn phones exhibit while stationary.
	homeAlt []radio.TowerID

	// awayNames/awayWeights cache pandemic.RelocationDestinations, which
	// builds fresh slices on every call; the destination set is static.
	awayNames   []string
	awayWeights []float64
}

// New returns a simulator for the population under the scenario.
func New(pop *popsim.Population, scen *pandemic.Scenario, seed uint64) *Simulator {
	s := &Simulator{
		pop:   pop,
		scen:  scen,
		topo:  pop.Topology(),
		model: pop.Model(),
		seed:  rng.Hash64(seed ^ 0x5151),
		cols:  pop.Cols(),
	}
	// The alternate home tower is the best reselection neighbour at the
	// home site (radio propagation model), which is what an idle phone
	// actually bounces to.
	s.homeAlt = make([]radio.TowerID, len(pop.Users))
	for i, ht := range s.cols.HomeTower {
		s.homeAlt[i] = s.topo.ReselectionNeighbor(s.topo.Tower(ht).Loc, ht)
	}
	s.awayNames, s.awayWeights = pandemic.RelocationDestinations()
	return s
}

// Population returns the simulated population.
func (s *Simulator) Population() *popsim.Population { return s.pop }

// Scenario returns the behavioural scenario.
func (s *Simulator) Scenario() *pandemic.Scenario { return s.scen }

// Day simulates all native smartphone agents for one day and returns
// their traces. The result is deterministic and independent of any other
// day's simulation. It is a convenience wrapper over DayInto with a
// fresh buffer, so the result is safe to retain; hot loops should hold a
// DayBuffer and call DayInto instead.
func (s *Simulator) Day(day timegrid.SimDay) []DayTrace {
	return s.DayInto(NewDayBuffer(), day)
}

// DayInto simulates all native smartphone agents for one day into buf,
// reusing its arena and builder scratch: once buf has warmed to the
// working size, a call performs no heap allocation. The returned traces
// are bit-identical to Day's but alias buf — they are valid until buf's
// next Reset or DayInto. Concurrent calls must use distinct buffers.
func (s *Simulator) DayInto(buf *DayBuffer, day timegrid.SimDay) []DayTrace {
	buf.Reset(day)
	for _, id := range s.pop.Native() {
		s.buildUserDay(&buf.b, id, day)
		buf.b.flushTo(buf, id)
	}
	return buf.Traces()
}

// UserDay simulates a single agent-day into a standalone trace.
func (s *Simulator) UserDay(id popsim.UserID, day timegrid.SimDay) DayTrace {
	var b dayBuilder
	s.buildUserDay(&b, id, day)
	t := DayTrace{User: id, Visits: make([]Visit, 0, b.visitCount())}
	for bin := b.firstBin(); bin < timegrid.BinsPerDay; bin++ {
		t.Visits = append(t.Visits, b.bins[bin]...)
	}
	return t
}

// buildUserDay simulates one agent-day into the builder scratch; the
// visits stay staged per bin until flushTo (or UserDay) flattens them.
func (s *Simulator) buildUserDay(b *dayBuilder, id popsim.UserID, day timegrid.SimDay) {
	cols := s.cols
	src := rng.Stream2(s.seed, uint64(id), uint64(day))

	b.reset(id, day, s)
	// Phones switched off overnight leave no night observations; the
	// decision is drawn first so the rest of the day's stream is stable.
	b.nightOff = src.Bool(cols.NightOff[id])

	// Relocation candidates live at their secondary residence for the
	// whole lockdown window (§3.4) — but only under scenarios whose
	// relocation toggle is on; RelocationActive is always false
	// otherwise, keeping candidates at home.
	if cols.Relocates[id] && s.scen.RelocationActive(day) {
		b.residenceTower = cols.RelocTower[id]
		b.residenceDistrict = cols.RelocDistrict[id]
		b.localDay(&src, 0.5) // quiet, mostly-home day at the destination
		return
	}

	// Weekend away-days (day trips / weekends in other counties).
	sd, inStudy := day.ToStudyDay()
	homeCounty := s.model.County(cols.HomeCounty[id])
	if day.IsWeekend() {
		p := 0.0
		if inStudy {
			p = s.scen.WeekendAwayProb(sd, homeCounty)
		} else {
			p = s.scen.WeekendAwayProb(0, homeCounty) // February baseline
		}
		if src.Bool(p) {
			b.awayDay(&src, sd, inStudy)
			return
		}
	}

	b.normalDay(&src, sd, inStudy)
}

// dayBuilder accumulates one agent-day. It is pure scratch: reset
// re-arms it for the next agent while the per-bin staging arrays and
// weight buffers keep their capacity, so steady-state building performs
// no allocation.
type dayBuilder struct {
	s    *Simulator
	id   popsim.UserID
	day  timegrid.SimDay
	bins [timegrid.BinsPerDay][]Visit
	used [timegrid.BinsPerDay]int32

	// u is the agent's full User record, resolved lazily by user():
	// quiet day shapes (relocation, away-day) never touch it, only the
	// anchor-driven paths pay for the wide struct access.
	u *popsim.User

	// homeTower mirrors cols.HomeTower[id] so fillResidence's inner loop
	// stays column-fed.
	homeTower radio.TowerID

	residenceTower    radio.TowerID
	residenceDistrict census.DistrictID
	// nightOff suppresses all observations in the night bins (00-08):
	// the device is powered off, so the probes see nothing.
	nightOff bool

	// weighted-choice scratch, reused across agents.
	weights  []float64
	counties []*census.County
}

// reset re-arms the builder for a new agent-day, keeping all capacity.
// Home geography comes from the population's dense columns.
func (b *dayBuilder) reset(id popsim.UserID, day timegrid.SimDay, s *Simulator) {
	b.s, b.id, b.day = s, id, day
	b.u = nil
	for i := range b.bins {
		b.bins[i] = b.bins[i][:0]
	}
	b.used = [timegrid.BinsPerDay]int32{}
	cols := s.cols
	b.homeTower = cols.HomeTower[id]
	b.residenceTower = b.homeTower
	b.residenceDistrict = cols.HomeDistrict[id]
	b.nightOff = false
}

// user resolves the agent's full record on first use.
func (b *dayBuilder) user() *popsim.User {
	if b.u == nil {
		b.u = b.s.pop.User(b.id)
	}
	return b.u
}

// add records dwell seconds at tower in bin, clipping to the bin budget.
func (b *dayBuilder) add(bin timegrid.Bin, tower radio.TowerID, seconds int32, atRes bool) {
	free := int32(secondsPerBin) - b.used[bin]
	if seconds > free {
		seconds = free
	}
	if seconds <= 0 {
		return
	}
	b.used[bin] += seconds
	b.bins[bin] = append(b.bins[bin], MakeVisit(tower, bin, seconds, atRes))
}

// fillResidence tops every bin up to its 4-hour budget with dwell at the
// current residence, with occasional reselection onto the alternate home
// tower (idle phones bounce between overlapping cells).
func (b *dayBuilder) fillResidence(src *rng.Source) {
	alt := b.s.homeAlt[b.id]
	for bin := timegrid.Bin(0); int(bin) < timegrid.BinsPerDay; bin++ {
		free := int32(secondsPerBin) - b.used[bin]
		if free <= 0 {
			continue
		}
		if alt != b.residenceTower && b.residenceTower == b.homeTower && src.Bool(0.25) {
			churn := int32(float64(free) * src.Range(0.1, 0.3))
			b.add(bin, alt, churn, false)
			free -= churn
		}
		b.add(bin, b.residenceTower, free, true)
	}
}

// firstBin returns the first observable bin of the day. Night-off days
// drop the night bins entirely: an off device is invisible to the
// network.
func (b *dayBuilder) firstBin() int {
	if b.nightOff {
		return 2 // bins 0 and 1 cover 00:00-08:00
	}
	return 0
}

// visitCount returns the number of observable visits staged.
func (b *dayBuilder) visitCount() int {
	n := 0
	for bin := b.firstBin(); bin < timegrid.BinsPerDay; bin++ {
		n += len(b.bins[bin])
	}
	return n
}

// flushTo flattens the staged bins into the buffer's arena as one trace,
// in bin order — exactly the order finish() used to emit.
func (b *dayBuilder) flushTo(buf *DayBuffer, id popsim.UserID) {
	buf.BeginUser(id)
	for bin := b.firstBin(); bin < timegrid.BinsPerDay; bin++ {
		buf.visits = append(buf.visits, b.bins[bin]...)
	}
}

// activity returns the agent's out-of-home activity level for the day.
func (b *dayBuilder) activity(sd timegrid.StudyDay, inStudy bool) float64 {
	if !inStudy {
		return 1
	}
	return b.s.scen.RegionalActivity(sd, b.s.model.County(b.s.cols.HomeCounty[b.id]))
}

// baseLeisureTrips returns the expected discretionary trips per day for
// the profile on a baseline day.
func baseLeisureTrips(p popsim.Profile, weekend bool) float64 {
	var t float64
	switch p {
	case popsim.OfficeWorker:
		t = 1.0
	case popsim.KeyWorker:
		t = 0.7
	case popsim.Student:
		t = 1.3
	case popsim.Retired:
		t = 0.9
	default:
		t = 0.8
	}
	if weekend {
		t *= 1.6
	}
	return t
}

// leisureFloor returns the minimum leisure multiplier a cluster retains
// under lockdown: inner-city clusters keep moving locally (groceries,
// exercise around dense commercial areas — the paper's explanation for
// Ethnicity Central's small entropy drop), rural residents keep walking.
func leisureFloor(c census.Cluster) float64 {
	switch c {
	case census.EthnicityCentral:
		return 0.50
	case census.Cosmopolitans:
		return 0.28
	case census.RuralResidents:
		return 0.30
	default:
		return 0.20
	}
}

// workAttendance returns the probability the agent travels to the work
// anchor on this day.
func (b *dayBuilder) workAttendance(a float64, sd timegrid.StudyDay, inStudy, weekend bool) float64 {
	switch b.s.cols.Profile[b.id] {
	case popsim.OfficeWorker:
		if weekend {
			return 0.06 * a
		}
		// Office work collapses quadratically with activity: WFH advice
		// plus closures empty the offices.
		return 0.85 * a * a
	case popsim.KeyWorker:
		p := 0.90 * (0.62 + 0.38*a)
		if weekend {
			p *= 0.35
		}
		return p
	case popsim.Student:
		if weekend {
			return 0
		}
		if inStudy && sd >= timegrid.VenueClosures {
			return 0 // schools closed 20 March
		}
		return 0.92
	default:
		return 0
	}
}

// normalDay builds a regular day at the primary residence.
func (b *dayBuilder) normalDay(src *rng.Source, sd timegrid.StudyDay, inStudy bool) {
	u := b.user()
	weekend := b.day.IsWeekend()
	a := b.activity(sd, inStudy)

	working := false
	if u.Worker() && len(u.Anchors) > 1 && u.Anchors[1].Kind == popsim.AnchorWork {
		if src.Bool(b.workAttendance(a, sd, inStudy, weekend)) {
			working = true
			work := u.Anchors[1]
			// Bins 2 and 3 (08–16) at the workplace; bin 4 splits
			// between workplace and the journey home.
			b.add(2, work.Tower, secondsPerBin, false)
			b.add(3, work.Tower, secondsPerBin, false)
			b.add(4, work.Tower, int32(src.IntRange(3600, 9000)), false)
			// Commute transit: a short dwell on a tower of the work
			// district (a different sector/site than the office).
			transit := b.s.topo.PickTower(work.District, b.day, src)
			b.add(1, transit, int32(src.IntRange(600, 1800)), false)
		}
	}

	// Discretionary trips.
	mult := a
	if floor := leisureFloor(u.Cluster); mult < floor {
		mult = floor
	}
	expected := baseLeisureTrips(u.Profile, weekend) * mult
	if working {
		expected *= 0.5
	}
	trips := src.Poisson(expected)
	for i := 0; i < trips; i++ {
		b.leisureTrip(src, a, inStudy)
	}

	// Evening outing (pre-lockdown social life).
	if !inStudy || a > 0.8 {
		if src.Bool(0.25 * a) {
			b.leisureTripInBin(src, 5, a, inStudy)
		}
	}

	b.fillResidence(src)
}

// leisureBinWeights and localBinWeights are the static daytime-bin
// preferences of discretionary and local trips; package-level so the hot
// path never rebuilds them.
var (
	leisureBinWeights = [...]float64{0, 0, 1.0, 1.3, 1.4, 0.7}
	localBinWeights   = [...]float64{0, 0, 1, 1.3, 1.2, 0.5}
)

// leisureTrip places one discretionary trip in a daytime bin.
func (b *dayBuilder) leisureTrip(src *rng.Source, a float64, inStudy bool) {
	bin := timegrid.Bin(src.Pick(leisureBinWeights[:]))
	b.leisureTripInBin(src, bin, a, inStudy)
}

// leisureTripInBin places one trip in the given bin: usually to one of
// the agent's anchors, sometimes exploration of a nearby tower (the
// source of entropy beyond the anchor set). Under low activity the
// exploration range contracts to the home district.
func (b *dayBuilder) leisureTripInBin(src *rng.Source, bin timegrid.Bin, a float64, inStudy bool) {
	u := b.user()
	var tower radio.TowerID
	explore := src.Bool(0.18)
	if explore || len(u.Anchors) <= 1 {
		// Exploration: a random tower near home; under restrictions it
		// stays within the home district.
		d := b.residenceDistrict
		if a > 0.7 && src.Bool(0.4) {
			// Pre-pandemic exploration can reach a neighbouring district
			// of the same county.
			c := b.s.model.County(u.HomeCounty)
			d = c.Districts[src.Intn(len(c.Districts))]
		}
		tower = b.s.topo.PickTower(d, b.day, src)
	} else {
		// Weighted anchor choice among discretionary anchors; distant
		// anchors are suppressed under restrictions.
		cands := u.Anchors[1:]
		weights := b.weights[:0]
		homeLoc := b.s.topo.Tower(u.HomeTower).Loc
		for _, anc := range cands {
			if anc.Kind == popsim.AnchorWork {
				weights = append(weights, 0.1) // work is handled separately
				continue
			}
			w := anc.Weight
			if inStudy && a < 0.7 {
				dist := b.s.topo.Tower(anc.Tower).Loc.Dist(homeLoc)
				if dist > 5 {
					// Long discretionary trips vanish under lockdown.
					w *= 0.12
				}
			}
			weights = append(weights, w)
		}
		b.weights = weights
		tower = cands[src.Pick(weights)].Tower
	}
	dur := int32(src.IntRange(2400, 7200))
	b.add(bin, tower, dur, false)
}

// awayDay builds a weekend-away day: night at home, the daytime in a
// destination county. Londoners head for the home counties and the
// south coast (the Fig. 7 destination set); residents elsewhere visit
// countryside within a plausible day-trip range.
func (b *dayBuilder) awayDay(src *rng.Source, sd timegrid.StudyDay, inStudy bool) {
	county := b.pickAwayCounty(src, sd, inStudy)
	if county == nil || county.ID == b.s.cols.HomeCounty[b.id] {
		b.normalDay(src, sd, inStudy)
		return
	}
	// Visit one or two districts of the destination during bins 2–4.
	d1 := county.Districts[src.Intn(len(county.Districts))]
	t1 := b.s.topo.PickTower(d1, b.day, src)
	b.add(2, t1, secondsPerBin, false)
	b.add(3, t1, secondsPerBin, false)
	if src.Bool(0.5) {
		d2 := county.Districts[src.Intn(len(county.Districts))]
		t2 := b.s.topo.PickTower(d2, b.day, src)
		b.add(4, t2, int32(src.IntRange(3600, 10800)), false)
	} else {
		b.add(4, t1, int32(src.IntRange(3600, 10800)), false)
	}
	b.fillResidence(src)
}

// pickAwayCounty chooses the weekend-trip destination.
func (b *dayBuilder) pickAwayCounty(src *rng.Source, sd timegrid.StudyDay, inStudy bool) *census.County {
	model := b.s.model
	homeCounty := b.s.cols.HomeCounty[b.id]
	homeKind := model.County(homeCounty).Kind
	if homeKind == census.KindMetroCore || homeKind == census.KindMetroSuburb {
		names, base := b.s.awayNames, b.s.awayWeights
		w := b.weights[:0]
		for i := range base {
			bias := 1.0
			if inStudy {
				bias = b.s.scen.ExodusDestinationBias(sd, names[i])
			}
			w = append(w, base[i]*bias)
		}
		b.weights = w
		c, ok := model.CountyByName(names[src.Pick(w)])
		if !ok {
			return nil
		}
		return c
	}
	// Elsewhere: countryside within day-trip range, nearer is likelier.
	const tripKm = 90.0
	homeLoc := model.County(homeCounty).Area.Center
	cands := b.counties[:0]
	weights := b.weights[:0]
	for ci := range model.Counties {
		c := &model.Counties[ci]
		if c.ID == homeCounty {
			continue
		}
		if c.Kind != census.KindRural && c.Kind != census.KindMixed && c.Kind != census.KindCoastal {
			continue
		}
		dist := c.Area.Center.Dist(homeLoc)
		if dist > tripKm {
			continue
		}
		cands = append(cands, c)
		weights = append(weights, 1/(dist+10))
	}
	b.counties, b.weights = cands, weights
	if len(cands) == 0 {
		return nil
	}
	return cands[src.Pick(weights)]
}

// localDay builds a quiet day around the current residence (used for
// relocated agents): a few local trips, most time at the residence.
func (b *dayBuilder) localDay(src *rng.Source, tripLevel float64) {
	trips := src.Poisson(0.8 * tripLevel)
	for i := 0; i < trips; i++ {
		bin := timegrid.Bin(src.Pick(localBinWeights[:]))
		t := b.s.topo.PickTower(b.residenceDistrict, b.day, src)
		b.add(bin, t, int32(src.IntRange(2400, 6000)), false)
	}
	b.fillResidence(src)
}
