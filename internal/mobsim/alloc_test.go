package mobsim

import (
	"testing"

	"repro/internal/timegrid"
)

// allocDays is the day cycle the steady-state allocation tests measure
// over: a weekday/weekend mix across February and the lockdown window,
// so every simulation branch (normal, away, relocated, night-off) is
// exercised.
var allocDays = []timegrid.SimDay{0, 5, 6, 30, 45, 60, 75, 90}

// TestDayIntoSteadyStateAllocs pins the tentpole guarantee: once a
// DayBuffer has warmed to the working size, DayInto performs no heap
// allocation. The pre-refactor per-day path allocated one dayBuilder,
// one Visits slice per agent and per-bin append churn — ~6 allocations
// per agent-day, millions per full run.
func TestDayIntoSteadyStateAllocs(t *testing.T) {
	s := fixture(t)
	buf := NewDayBuffer()
	// Warm the arena and scratch over the exact day cycle measured.
	for _, day := range allocDays {
		s.DayInto(buf, day)
	}
	i := 0
	allocs := testing.AllocsPerRun(len(allocDays)*3, func() {
		s.DayInto(buf, allocDays[i%len(allocDays)])
		i++
	})
	// Steady state must be allocation-free; any regression here puts an
	// allocation back into the innermost loop of the whole system.
	if allocs > 0 {
		t.Errorf("DayInto allocates %.1f times per day in steady state, want 0", allocs)
	}
}

// TestDayIntoMatchesDay asserts the arena path is bit-identical to the
// allocating compatibility wrapper, including across buffer reuse.
func TestDayIntoMatchesDay(t *testing.T) {
	s := fixture(t)
	buf := NewDayBuffer()
	for _, day := range allocDays {
		fresh := s.Day(day)
		reused := s.DayInto(buf, day)
		if len(fresh) != len(reused) {
			t.Fatalf("day %d: %d vs %d traces", day, len(fresh), len(reused))
		}
		for i := range fresh {
			if fresh[i].User != reused[i].User {
				t.Fatalf("day %d trace %d: user %d vs %d", day, i, fresh[i].User, reused[i].User)
			}
			if len(fresh[i].Visits) != len(reused[i].Visits) {
				t.Fatalf("day %d user %d: %d vs %d visits", day, fresh[i].User, len(fresh[i].Visits), len(reused[i].Visits))
			}
			for j := range fresh[i].Visits {
				if fresh[i].Visits[j] != reused[i].Visits[j] {
					t.Fatalf("day %d user %d visit %d: %+v vs %+v",
						day, fresh[i].User, j, fresh[i].Visits[j], reused[i].Visits[j])
				}
			}
		}
	}
}
