// Package rng provides a small deterministic, splittable pseudo-random
// number generator used by every stochastic component of the simulator.
//
// The generator is a SplitMix64 core wrapped in convenience samplers. Its
// two key properties for this project are:
//
//   - Determinism: the same master seed always yields byte-identical
//     datasets, so experiments, tests and benchmarks are reproducible.
//   - Splittability: independent streams can be derived for (entity, day)
//     pairs without sharing state, so simulating users or cells in any
//     order — or in parallel — produces identical results.
//
// math/rand is deliberately avoided: its global state makes per-entity
// reproducibility awkward and its algorithm differs across Go versions.
package rng

import "math"

// Source is a deterministic SplitMix64 stream. The zero value is a valid
// stream seeded with 0.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// State exposes the stream's position for checkpointing. A Source is
// fully determined by this one word: FromState(s.State()) continues the
// exact sequence s would produce.
func (s *Source) State() uint64 { return s.state }

// FromState reconstructs the stream a State() call captured, as a value
// (take its address for the sampler methods). Round-tripping through
// State/FromState is exact — the restored stream's future draws are
// bit-identical to the original's.
func FromState(state uint64) Source { return Source{state: state} }

// golden gamma constant of SplitMix64.
const gamma = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent stream labelled by key. Streams derived
// with distinct keys from the same parent are statistically independent;
// the parent is not advanced.
func (s *Source) Split(key uint64) *Source {
	// Mix the parent state with the key through one extra SplitMix64
	// finalisation so that adjacent keys land far apart.
	return &Source{state: splitState(s.state, key)}
}

// Split2 derives an independent stream labelled by an (a, b) pair, e.g.
// (userID, day).
func (s *Source) Split2(a, b uint64) *Source {
	return s.Split(a).Split(b)
}

// splitState is the state derivation behind Split, as a pure function.
func splitState(state, key uint64) uint64 {
	z := state ^ (key+1)*gamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Stream2 returns the (a, b)-labelled stream of seed as a value — the
// sequence is identical to New(seed).Split2(a, b), but nothing escapes to
// the heap, so per-entity stream setup in hot loops is allocation-free
// (take the address of the returned value for the sampler methods).
func Stream2(seed, a, b uint64) Source {
	return Source{state: splitState(splitState(seed, a), b)}
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Range returns a uniform sample in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// IntRange returns a uniform sample in [lo, hi] (inclusive bounds). It
// panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Norm returns a sample from the standard normal distribution using the
// Box–Muller transform.
func (s *Source) Norm() float64 {
	// Guard against log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormRange returns mean + stddev*Norm().
func (s *Source) NormRange(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// LogNormal returns a sample of a log-normal distribution with the given
// parameters of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exp returns an exponentially distributed sample with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}

// Poisson returns a Poisson-distributed sample with the given mean, using
// Knuth's method for small means and a normal approximation for large
// ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation, adequate for KPI count generation.
		n := int(math.Round(s.NormRange(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pick returns a uniformly chosen index weighted by weights. Zero or
// negative weights are treated as zero. If all weights are zero it returns
// 0. It panics on an empty slice.
func (s *Source) Pick(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Pick with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices in place using swap, via the
// Fisher–Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Hash64 mixes an arbitrary uint64 into a well-distributed uint64; it is
// the stateless SplitMix64 finaliser, handy for deriving stable per-entity
// seeds from IDs.
func Hash64(x uint64) uint64 {
	z := x + gamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashString folds a string into a uint64 seed using FNV-1a, then mixes
// it. It lets named entities (regions, districts) derive stable streams.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Hash64(h)
}
