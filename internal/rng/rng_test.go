package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams with different keys should differ")
	}
	// Splitting must not advance the parent.
	p1, p2 := New(7), New(7)
	p1.Split(99)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(42).Split2(10, 20)
	b := New(42).Split2(10, 20)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split2 streams diverged at %d", i)
		}
	}
	c := New(42).Split2(20, 10)
	if New(42).Split2(10, 20).Uint64() == c.Uint64() {
		t.Error("Split2 should not be symmetric in its arguments")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		x := s.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[s.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d drawn %d times, expected ≈1000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Errorf("IntRange(3,7) never produced %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Errorf("IntRange(5,5) = %d", got)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(5)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := s.Exp(3.5)
		if x < 0 {
			t.Fatalf("Exp() = %v < 0", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.1 {
		t.Errorf("Exp(3.5) mean = %v", mean)
	}
}

func TestPoisson(t *testing.T) {
	s := New(7)
	for _, mean := range []float64{0.3, 2, 10, 100} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			k := s.Poisson(mean)
			if k < 0 {
				t.Fatalf("Poisson < 0")
			}
			sum += float64(k)
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.08+0.08 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if got := New(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := New(1).Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d", got)
	}
}

func TestPick(t *testing.T) {
	s := New(8)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	for i := 0; i < 40000; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight entries picked: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight-3 / weight-1 ratio = %v, want ≈3", ratio)
	}
	// All-zero weights fall back to index 0.
	if got := s.Pick([]float64{0, 0}); got != 0 {
		t.Errorf("Pick(all zero) = %d", got)
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick(empty) should panic")
		}
	}()
	New(1).Pick(nil)
}

func TestPerm(t *testing.T) {
	s := New(9)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestBool(t *testing.T) {
	s := New(10)
	n := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Errorf("Bool(0.25) true %d/10000 times", n)
	}
	if New(1).Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !New(1).Bool(1.1) {
		t.Error("Bool(>1) must be true")
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("Hash64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestHashString(t *testing.T) {
	if HashString("Inner London") == HashString("Outer London") {
		t.Error("distinct strings should hash differently")
	}
	if HashString("x") != HashString("x") {
		t.Error("HashString must be deterministic")
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e15 || math.Abs(b) > 1e15 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		x := New(seed).Range(lo, hi)
		return x >= lo && (x <= hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if x := s.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal = %v", x)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Errorf("shuffle changed the multiset: %v", xs)
	}
}
