// Quickstart: build the synthetic UK, simulate the COVID-19 window, and
// print the headline mobility result of the paper — the ~50% collapse of
// the radius of gyration after the 23 March stay-at-home order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

func main() {
	// A small population is enough for the national series; everything
	// is deterministic in the seed.
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = 3000
	cfg.SkipKPI = true // mobility only for the quickstart

	fmt.Println("simulating a UK MNO, 1 Feb – 10 May 2020 ...")
	r := experiments.RunStandard(cfg)

	gyr := r.Mobility.NationalSeries(core.MetricGyration)
	ent := r.Mobility.NationalSeries(core.MetricEntropy)
	gw := core.DeltaSeries(gyr, stats.Mean(gyr.Values[:7])).WeeklyMeans()
	ew := core.DeltaSeries(ent, stats.Mean(ent.Values[:7])).WeeklyMeans()

	fmt.Println("\nnational mobility, Δ% vs week 9 (weekly means):")
	fmt.Printf("  %-10s", "week")
	for _, w := range timegrid.Weeks() {
		fmt.Printf(" %6d", int(w))
	}
	fmt.Println()
	printRow := func(name string, s stats.Series) {
		fmt.Printf("  %-10s", name)
		for _, v := range s.Values {
			fmt.Printf(" %6.1f", v)
		}
		fmt.Printf("   %s\n", report.Sparkline(s.Values))
	}
	printRow("gyration", gw)
	printRow("entropy", ew)

	trough, _ := gw.Min()
	fmt.Printf("\npaper: ≈ −50%% gyration after the stay-at-home order (week 13)\n")
	fmt.Printf("ours : %.0f%% at the trough — people moved far less, and closer to home\n", trough)
	fmt.Printf("homes detected for %d of %d users over February nights (§2.3 pipeline)\n",
		len(r.Homes), len(r.Dataset.Pop.Native()))
}
