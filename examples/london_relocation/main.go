// London relocation: regenerate the Fig. 7 analysis — where did Inner
// London residents go during the lockdown? The pipeline detects homes
// from February nights, tracks the cohort through the study window, and
// prints the mobility matrix rows for the top receiving counties.
//
//	go run ./examples/london_relocation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = 6000
	cfg.SkipKPI = true
	fmt.Println("detecting Inner London residents and tracking them through lockdown ...")
	r := experiments.RunStandard(cfg)

	m := r.Matrix
	fmt.Printf("cohort: %d users with inferred Inner London homes\n\n", m.CohortSize())

	// Weekly view of the matrix (the paper plots days; weeks read better
	// in a terminal).
	home := m.HomePresenceSeries()
	base := stats.Mean(home.Values[:7])
	hw := core.DeltaSeries(home, base).WeeklyMeans()
	fmt.Printf("  %-16s %s", "present at home", report.Sparkline(hw.Values))
	for i, v := range hw.Values {
		fmt.Printf(" w%d:%+.0f%%", timegrid.FirstWeek+i, v)
	}
	fmt.Println()

	for _, c := range m.TopDestinations(6) {
		p := m.PresenceSeries(c)
		b := stats.Mean(p.Values[:7])
		pw := core.DeltaSeries(p, b).WeeklyMeans()
		fmt.Printf("  %-16s %s", c.Name, report.Sparkline(pw.Values))
		for i, v := range pw.Values {
			fmt.Printf(" w%d:%+.0f%%", timegrid.FirstWeek+i, v)
		}
		fmt.Println()
	}

	lockWeek := 13 - timegrid.FirstWeek
	fmt.Printf("\ntakeaway: from week 13 a sustained %.0f%% of the cohort is absent from\n", -hw.Values[lockWeek])
	fmt.Println("Inner London (paper: ~10%) — students leaving campuses, long-term")
	fmt.Println("tourists departing, and residents riding out the lockdown in second")
	fmt.Println("homes, with Hampshire the top destination.")

	// The 21-22 March pre-lockdown exodus towards the coast.
	if es, ok := r.Dataset.Model.CountyByName("East Sussex"); ok {
		p := m.PresenceSeries(es)
		b := stats.Mean(p.Values[:7])
		spike := (p.Values[26] + p.Values[27]) / 2
		fmt.Printf("\nEast Sussex presence on 21-22 March: %.1f vs %.1f week-9 average\n", spike, b)
		fmt.Println("(the paper's pre-lockdown weekend exodus spike)")
	}
}
