// Voice surge: regenerate the Fig. 9 analysis — the conversational-voice
// (VoLTE, QCI 1) traffic spike around the lockdown, and the inter-MNO
// interconnect congestion incident it caused: downlink packet loss more
// than doubled in weeks 10-11 until the operations teams upgraded the
// interconnect capacity on 21 March.
//
//	go run ./examples/voice_surge
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = 6000
	fmt.Println("simulating the March 2020 voice surge ...")
	r := experiments.RunStandard(cfg)

	t := stats.Table{
		Title:    "4G voice (QCI 1), UK — weekly median Δ% vs week-9 median",
		ColNames: weekCols(),
	}
	for _, m := range traffic.VoiceMetrics() {
		t.AddRow(m.String(), core.WeeklyDeltaSeries(r.KPI.NationalSeries(m)).Values)
	}
	report.WriteTable(os.Stdout, &t)

	vol := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceVolume))
	loss := core.WeeklyDeltaSeries(r.KPI.NationalSeries(traffic.VoiceDLLoss))
	peak, pw := vol.Max()
	lossPeak, lw := loss.Max()
	fmt.Printf("\nvoice volume peak: %+.0f%% in week %d (paper: ≈+150%% — seven years of\n",
		peak, timegrid.FirstWeek+pw)
	fmt.Println("forecast voice growth absorbed in days)")
	fmt.Printf("DL packet loss peak: %+.0f%% in week %d, back below baseline after the\n",
		lossPeak, timegrid.FirstWeek+lw)
	fmt.Println("interconnect upgrade (paper: >+100% in weeks 10-11, then reverted)")

	// Show the interconnect capacity schedule driving the incident.
	eng := r.Dataset.Engine
	before := eng.InterconnectCapacity(timegrid.StudyDay(10).ToSimDay())
	after := eng.InterconnectCapacity(timegrid.StudyDay(40).ToSimDay())
	fmt.Printf("\ninterconnect voice capacity: %.0f → %.0f agent-minutes/hour on 21 March\n",
		before, after)
	fmt.Println("(the operations response that cleared the congestion)")
}

func weekCols() []string {
	out := make([]string, 0, timegrid.StudyWeeks)
	for _, w := range timegrid.Weeks() {
		out = append(out, fmt.Sprintf("w%d", int(w)))
	}
	return out
}
