// Custom scenario: the library is not limited to replaying March 2020 —
// pandemic.Builder lets you define counterfactual intervention
// timelines. This example compares the measured mobility collapse under
// three scenarios: the calibrated COVID timeline, a lockdown imposed two
// weeks earlier, and a "voluntary distancing only" world with no order.
//
//	go run ./examples/custom_scenario
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pandemic"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
)

func main() {
	early, err := pandemic.NewBuilder().
		Activity(0, 1.0).
		Activity(7, 0.95).
		Activity(9, 0.60). // order lands on 4 March instead of 23 March
		Activity(14, 0.44).
		Activity(48, 0.46).
		Activity(76, 0.50).
		Voice(9, 2.3).
		Voice(14, 2.5).
		Voice(76, 1.8).
		HomeCellular(14, 0.78).
		WithRelocation().
		CaseCurve(80_000, 0.16, 38). // earlier suppression, smaller wave
		Build()
	if err != nil {
		log.Fatal(err)
	}
	voluntary, err := pandemic.NewBuilder().
		Activity(0, 1.0).
		Activity(16, 0.92). // declaration nudges behaviour …
		Activity(28, 0.80). // … but nothing is ever ordered
		Activity(76, 0.78).
		Voice(28, 1.5).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name string
		scen *pandemic.Scenario
	}{
		{"calibrated COVID timeline", nil}, // nil = pandemic.Default()
		{"lockdown two weeks earlier", early},
		{"voluntary distancing only", voluntary},
	}

	// The world — census, radio topology, population — is scenario-
	// independent: build it once and instantiate a run stack per
	// scenario (this is exactly what experiments.RunSweep automates).
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = 3000
	cfg.SkipKPI = true
	world := experiments.NewWorld(cfg)

	fmt.Println("national radius of gyration, Δ% vs week 9 (weekly means):")
	for _, sc := range scenarios {
		cfg.Scenario = sc.scen
		d := world.Instantiate(cfg)
		// Lightweight pass: mobility only, study window only.
		mob := core.NewMobilityAnalyzer(d.Pop, core.DefaultTopN)
		for day := timegrid.SimDay(timegrid.StudyDayOffset); day < timegrid.SimDays; day++ {
			mob.ConsumeDay(day, d.Sim.Day(day))
		}
		s := mob.NationalSeries(core.MetricGyration)
		w := core.DeltaSeries(s, stats.Mean(s.Values[:7])).WeeklyMeans()
		trough, ti := w.Min()
		fmt.Printf("  %-28s %s  trough %+.0f%% (week %d)\n",
			sc.name, report.Sparkline(w.Values), trough, timegrid.FirstWeek+ti)
	}

	fmt.Println("\nthe ordered-lockdown scenarios collapse mobility by ~60%; voluntary")
	fmt.Println("distancing alone stops well short of that — the paper's Fig. 4 point")
	fmt.Println("that the enforced order, not case counts, moved mobility.")
}
