// Lockdown impact: regenerate the Fig. 8 workload — the six network KPI
// panels for the UK and the five high-density regions — and print the
// Inner/Outer London divergence the paper highlights (§4.3): business
// districts empty while residential suburbs hold their traffic.
//
//	go run ./examples/lockdown_impact
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timegrid"
	"repro/internal/traffic"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.TargetUsers = 6000
	fmt.Println("simulating network KPIs over weeks 9-19 of 2020 ...")
	r := experiments.RunStandard(cfg)

	for _, m := range []traffic.Metric{traffic.DLVolume, traffic.ULVolume, traffic.DLActiveUsers, traffic.RadioLoad} {
		t := stats.Table{
			Title:    m.String() + " — weekly median Δ% vs week-9 median",
			ColNames: weekCols(),
		}
		t.AddRow("UK - all regions", core.WeeklyDeltaSeries(r.KPI.NationalSeries(m)).Values)
		for _, c := range r.Dataset.Model.FocusRegions() {
			t.AddRow(c.Name, core.WeeklyDeltaSeries(r.KPI.CountySeries(c, m)).Values)
		}
		report.WriteTable(os.Stdout, &t)
		fmt.Println()
	}

	inner, _ := r.Dataset.Model.CountyByName("Inner London")
	outer, _ := r.Dataset.Model.CountyByName("Outer London")
	idl := core.WeeklyDeltaSeries(r.KPI.CountySeries(inner, traffic.DLVolume))
	odl := core.WeeklyDeltaSeries(r.KPI.CountySeries(outer, traffic.DLVolume))
	imin, _ := idl.Min()
	omin, _ := odl.Min()
	fmt.Printf("takeaway: Inner London DL trough %.0f%% vs Outer London %.0f%% —\n", imin, omin)
	fmt.Println("commercial centres emptied while suburbs kept (or grew) their traffic,")
	fmt.Println("mirroring the paper's −41% vs −15% split.")
}

func weekCols() []string {
	out := make([]string, 0, timegrid.StudyWeeks)
	for _, w := range timegrid.Weeks() {
		out = append(out, fmt.Sprintf("w%d", int(w)))
	}
	return out
}
